"""E2 — Eq. (1) and the analytic phases k in {m-2, m-1, m}.

The paper gives closed forms only for the last three phases; everything
else is numeric.  This bench times the numeric solver across a dense grid
and certifies that it matches every published closed form to near machine
precision:

* Eq. (1) for m = 2 (both branches);
* phase k = m:   c = 1 + 1/m + 1/eps;
* phase k = m-1: the quadratic root;
* phase k = m-2: the cubic root.
"""

import numpy as np

from repro.analysis.phase import log_grid
from repro.core.params import (
    BoundFunction,
    closed_form_last_phase,
    closed_form_m2,
    closed_form_second_last_phase,
    closed_form_third_last_phase,
    corner_values,
    phase_index,
)

GRID = log_grid(0.01, 1.0, 300)


def eq1_max_error() -> float:
    bf = BoundFunction(2)
    return max(abs(bf.value(float(e)) - closed_form_m2(float(e))) for e in GRID)


def test_eq1_m2_closed_form(benchmark, save_artifact):
    worst = benchmark(eq1_max_error)
    assert worst < 1e-9
    benchmark.extra_info["max_abs_error"] = worst
    save_artifact(
        "eq1_closed_forms_m2.txt",
        f"Eq. (1) vs numeric recursion on {len(GRID)} grid points: "
        f"max |error| = {worst:.3e}\n",
    )


def analytic_phase_errors() -> dict[str, float]:
    errors = {"k=m": 0.0, "k=m-1": 0.0, "k=m-2": 0.0}
    for m in (2, 3, 4, 5, 6):
        corners = corner_values(m)
        bf = BoundFunction(m)
        # Sample three points inside each of the last three phases.
        for label, k in (("k=m", m), ("k=m-1", m - 1), ("k=m-2", m - 2)):
            if k < 1:
                continue
            lo, hi = corners[k - 1], corners[k]
            for frac in (0.25, 0.5, 0.9):
                eps = lo + frac * (hi - lo)
                if eps <= 0:
                    continue
                assert phase_index(eps, m) == k
                numeric = bf.value(eps)
                if k == m:
                    closed = closed_form_last_phase(eps, m)
                elif k == m - 1:
                    closed = closed_form_second_last_phase(eps, m)
                else:
                    closed = closed_form_third_last_phase(eps, m)
                errors[label] = max(errors[label], abs(numeric - closed))
    return errors


def test_last_three_phases_closed_forms(benchmark, save_artifact):
    errors = benchmark(analytic_phase_errors)
    for label, err in errors.items():
        assert err < 1e-7, f"{label}: {err}"
    benchmark.extra_info.update({k: float(v) for k, v in errors.items()})
    lines = [f"{label}: max |numeric - closed| = {err:.3e}" for label, err in errors.items()]
    save_artifact("eq1_analytic_phases.txt", "\n".join(lines) + "\n")


def test_solver_throughput(benchmark):
    """Raw solver speed: full parameter solve across the m = 4 grid."""
    bf = BoundFunction(4)

    def solve_grid():
        return np.array([bf.value(float(e)) for e in GRID])

    values = benchmark(solve_grid)
    assert np.all(np.diff(values) < 0)
