"""E28 — remote elastic execution under network fault domains.

The elastic pool (E26) tolerates slot-level faults on one machine; a
fleet adds failure domains the slot model cannot express: a whole host
dying, a network partition that silences a healthy host, an overloaded
host that is slow but alive.  This bench drives the remote scheduler
(`repro.workloads.remote`) through both ladders and certifies:

* **chaotic 3-host sweep** — host ``b`` hard-dies on every lease
  (quarantined as one failure domain after its budget), host ``c`` is
  partitioned then healed 1s later (its expired leases re-dispatch and
  its stale late results dedup first-verified-wins), and both surviving
  hosts are slowed (heartbeats keep their leases — slow, not dead).
  The sweep completes with **zero cells lost** and rows
  **bit-identical** to the serial scalar run; ``b`` is the only
  quarantined host.
* **total host loss** — every registry host is refused at the launch
  handshake (pinned to a divergent code fingerprint), so the sweep
  degrades to the local fallback pool and still completes
  bit-identical, with the degradation recorded in the manifest.

Run directly (``python benchmarks/bench_remote.py``) to write the
machine-readable snapshot ``BENCH_remote.json`` at the repository root.
"""

import json
import tempfile
import time
from functools import partial
from pathlib import Path

from repro.analysis.tables import format_table
from repro.testing import HostChaosPlan
from repro.workloads.execute import ExecutionPolicy, execute_sweep
from repro.workloads.journal import load_journal
from repro.workloads.random_instances import random_instance
from repro.workloads.remote import HostSpec
from repro.workloads.sweep import SweepSpec

EPSILONS = [0.2, 0.4]
MACHINES = [1, 2]
REPS = 6
N_JOBS = 8
#: Injected per-cell delay on the surviving hosts — long enough that
#: the dead host's respawn-die-respawn cycle crosses its failure budget
#: (two worker launches, ~0.5s of interpreter+numpy startup each) while
#: the healthy hosts are still draining the queue.
SLOW_DELAY = 0.35
#: Partition host ``c`` from its 4th post-handshake message; heal 1s
#: after the first held message.
PARTITION = ("c", 4, 1.0)


def _spec() -> SweepSpec:
    return SweepSpec(
        epsilons=EPSILONS,
        machine_counts=MACHINES,
        algorithms=["threshold", "greedy"],
        # partial of an importable callable: the spec must unpickle
        # inside remote worker processes (never a __main__ attribute).
        workload=partial(random_instance, N_JOBS),
        repetitions=REPS,
        base_seed=28,
        label="remote-bench",
    )


def snapshot() -> dict:
    spec = _spec()

    serial = execute_sweep(spec)
    assert serial.complete

    # -- scenario 1: dead + partitioned-healed + slow host, one sweep.
    plan = HostChaosPlan(
        dead_host=(("b", 1),),
        partition=(PARTITION,),
        slow_host=(("a", SLOW_DELAY), ("c", SLOW_DELAY)),
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "remote.jsonl"
        t0 = time.perf_counter()
        chaotic = execute_sweep(
            spec,
            ExecutionPolicy(
                hosts=(
                    HostSpec(name="a"),
                    HostSpec(name="b"),
                    HostSpec(name="c"),
                ),
                host_chaos=plan,
                host_max_failures=1,
                heartbeat_interval=0.05,
                lease_timeout=0.4,
                journal=str(path),
            ),
        )
        chaotic_seconds = time.perf_counter() - t0
        state = load_journal(path)
        stats = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if json.loads(line).get("kind") == "stats"
        ][-1]
    host_rows = {h["name"]: h for h in stats["hosts"]}
    cells_by_host = {
        name: sum(
            1 for p in state.provenance.values() if p["host"] == name
        )
        for name in host_rows
    }

    # -- scenario 2: every host refused at handshake -> local fallback.
    t0 = time.perf_counter()
    degraded = execute_sweep(
        spec,
        ExecutionPolicy(
            hosts=(
                HostSpec(name="x", fingerprint="0" * 16),
                HostSpec(name="y", fingerprint="0" * 16),
            ),
            heartbeat_interval=0.05,
        ),
    )
    degraded_seconds = time.perf_counter() - t0

    return {
        "bench": "E28 remote elastic execution under network fault domains",
        "cells": chaotic.manifest.cells_total,
        "n_jobs": N_JOBS,
        "machines": MACHINES,
        "epsilons": EPSILONS,
        "repetitions": REPS,
        "base_seed": 28,
        "slow_delay_seconds": SLOW_DELAY,
        "partition": list(PARTITION),
        "hosts": list(host_rows),
        "chaotic_seconds": round(chaotic_seconds, 6),
        "chaotic_rows_bit_identical": chaotic.rows == serial.rows,
        "chaotic_journal_bit_identical": (
            sorted(
                json.dumps(r.as_dict(), sort_keys=True)
                for rows in state.completed.values()
                for r in rows
            )
            == sorted(
                json.dumps(r.as_dict(), sort_keys=True) for r in serial.rows
            )
        ),
        "chaotic_cells_lost": len(chaotic.manifest.failures),
        "chaotic_cells_completed": chaotic.manifest.cells_completed,
        "chaotic_recovered": chaotic.manifest.recovered,
        "chaotic_speculated": chaotic.manifest.speculated,
        "hosts_quarantined": sorted(
            hf.host for hf in chaotic.manifest.host_failures
        ),
        "host_leases": {n: h["leases"] for n, h in host_rows.items()},
        "host_cells": cells_by_host,
        "scheduler": stats["scheduler"],
        "degraded_seconds": round(degraded_seconds, 6),
        "degraded_rows_bit_identical": degraded.rows == serial.rows,
        "degraded_to_local": degraded.manifest.degraded_to_local,
        "degraded_hosts_quarantined": degraded.manifest.hosts_quarantined,
        "degraded_cells_lost": len(degraded.manifest.failures),
    }


def test_e28_remote_chaos_merges_bit_identical(benchmark, save_artifact):
    snap = benchmark.pedantic(snapshot, rounds=1, iterations=1)

    # The acceptance bar (ISSUE 10): dead + partitioned + slow hosts in
    # one sweep, zero cells lost, bit-identical rows, the dead host
    # quarantined as one failure domain — and total loss degrades to the
    # local fallback instead of losing the sweep.
    assert snap["chaotic_rows_bit_identical"]
    assert snap["chaotic_journal_bit_identical"]
    assert snap["chaotic_cells_lost"] == 0
    assert snap["chaotic_cells_completed"] == snap["cells"]
    assert snap["hosts_quarantined"] == ["b"]
    assert snap["scheduler"] == "elastic-remote"
    assert snap["degraded_rows_bit_identical"]
    assert snap["degraded_to_local"]
    assert snap["degraded_cells_lost"] == 0

    benchmark.extra_info.update(
        {
            "cells": snap["cells"],
            "hosts_quarantined": snap["hosts_quarantined"],
            "chaotic_recovered": snap["chaotic_recovered"],
            "degraded_to_local": snap["degraded_to_local"],
        }
    )
    fault = {"a": "slow", "b": "dies", "c": "partitioned+slow"}
    rows = [
        {
            "host": name,
            "fault": fault[name],
            "leases": snap["host_leases"][name],
            "cells": snap["host_cells"][name],
            "quarantined": name in snap["hosts_quarantined"],
        }
        for name in snap["hosts"]
    ]
    save_artifact(
        "e28_remote.txt",
        format_table(
            rows,
            title=(
                f"E28 — {snap['cells']} cells over 3 faulted hosts, "
                f"{snap['chaotic_cells_lost']} lost, bit-identical="
                f"{snap['chaotic_rows_bit_identical']}"
            ),
        ),
    )


def main() -> int:
    snap = snapshot()
    out = Path(__file__).resolve().parent.parent / "BENCH_remote.json"
    out.write_text(json.dumps(snap, indent=2) + "\n")
    print(f"cells                  : {snap['cells']:10d}")
    print(f"chaotic wall (s)       : {snap['chaotic_seconds']:10.3f}")
    print(f"cells lost             : {snap['chaotic_cells_lost']:10d}")
    print(f"hosts quarantined      : {', '.join(snap['hosts_quarantined']) or '-'}")
    print(f"host cells             : {snap['host_cells']}")
    print(
        "bit-identical rows     : "
        f"chaotic={snap['chaotic_rows_bit_identical']} "
        f"degraded={snap['degraded_rows_bit_identical']}"
    )
    print(f"degraded to local pool : {snap['degraded_to_local']}")
    print(f"wrote {out}")
    ok = (
        snap["chaotic_rows_bit_identical"]
        and snap["chaotic_journal_bit_identical"]
        and snap["chaotic_cells_lost"] == 0
        and snap["hosts_quarantined"] == ["b"]
        and snap["degraded_rows_bit_identical"]
        and snap["degraded_to_local"]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
