"""E1 — Fig. 1: the tight bound curves c(eps, m) for m = 1..4.

Regenerates the paper's Fig. 1: the four curves on a log grid over
(0, 1], the phase-transition circles, and the m = 1 dashed reference
2 + 1/eps.  The artefact ``out/fig1_bound_curves.txt`` holds the ASCII
figure and the CSV series.

Shape checks (paper-vs-measured, recorded in EXPERIMENTS.md):
* every curve is strictly decreasing in eps;
* curves are ordered by m (more machines -> smaller ratio);
* m = 2 has one transition at 2/7, m = 3 at {0.09, 6/13}, m = 4 three;
* transition ordinates are (2m+1)/k.
"""

import numpy as np
import pytest

from repro.analysis.phase import fig1_series, log_grid
from repro.analysis.plotting import ascii_plot, series_to_csv
from repro.analysis.svg import fig1_svg
from repro.core.params import corner_values

GRID = log_grid(0.02, 1.0, 200)
MACHINES = (1, 2, 3, 4)


def compute_fig1():
    return fig1_series(MACHINES, epsilons=GRID)


def test_fig1_bound_curves(benchmark, save_artifact):
    series = benchmark(compute_fig1)

    # --- shape assertions -------------------------------------------------
    for s in series:
        assert np.all(np.diff(s.values) < 0), f"c(eps, {s.m}) must decrease"
    for a, b in zip(series, series[1:]):
        assert np.all(b.values <= a.values + 1e-9), "more machines must not hurt"
    assert [len(s.transitions) for s in series] == [0, 1, 2, 3]
    assert series[1].transitions[0][0] == pytest.approx(2.0 / 7.0)
    assert series[2].transitions[0][0] == pytest.approx(0.09)
    assert series[2].transitions[1][0] == pytest.approx(6.0 / 13.0)
    for s in series:
        for k, (eps_corner, c_corner) in enumerate(s.transitions, start=1):
            assert c_corner == pytest.approx((2 * s.m + 1) / k)

    # --- artefact ----------------------------------------------------------
    plot = ascii_plot(
        {f"m={s.m}": (s.epsilons, np.minimum(s.values, 25.0)) for s in series},
        logx=True,
        markers={f"m={s.m}": s.transitions for s in series},
        title="Fig. 1 — c(eps, m), m = 1..4 (clipped at 25; O = phase transition)",
        width=78,
        height=24,
    )
    csv = series_to_csv(
        {f"m={s.m}": (s.epsilons, s.values) for s in series}, x_name="epsilon"
    )
    save_artifact("fig1_bound_curves.txt", plot + "\n\n" + csv)
    save_artifact("fig1_bound_curves.svg", fig1_svg(MACHINES))

    benchmark.extra_info["corners_m2"] = [float(c) for c in corner_values(2)[1:-1]]
    benchmark.extra_info["corners_m3"] = [float(c) for c in corner_values(3)[1:-1]]
    benchmark.extra_info["corners_m4"] = [float(c) for c in corner_values(4)[1:-1]]
    benchmark.extra_info["c_at_eps_0.1"] = {
        s.m: float(np.interp(0.1, s.epsilons, s.values)) for s in series
    }
