"""E8 — Corollary 1: randomized O(log 1/eps) single-machine algorithm.

On bait-and-whale streams (the deterministic Omega(1/eps) trap) the
classify-and-select expectation must scale logarithmically while the
deterministic optimum-class algorithm pays ~1/eps:

* deterministic ratio grows at least like 0.8 * (1 + 1/eps);
* randomized expected ratio stays below 2 * (ln(1/eps) + 2);
* the randomized/deterministic advantage grows as eps shrinks.

Ratios are computed against the certified flow upper bound on OPT.
"""

import math

from repro.analysis.tables import format_table
from repro.baselines.registry import run_algorithm
from repro.core.randomized import default_virtual_machines, expected_load_classify_select
from repro.offline.bracket import opt_bracket
from repro.workloads import alternating_instance

EPS_SERIES = [0.2, 0.1, 0.05, 0.02, 0.01]
ROUNDS = 6


def measure():
    rows = []
    for eps in EPS_SERIES:
        inst = alternating_instance(pairs=ROUNDS, machines=1, epsilon=eps)
        bracket = opt_bracket(inst, force_bounds=True)
        m_star = default_virtual_machines(eps)
        expected, _ = expected_load_classify_select(inst, m_star)
        deterministic = run_algorithm("goldwasser-kerbikov", inst)
        rows.append(
            {
                "eps": eps,
                "m*": m_star,
                "E_ratio_rand": bracket.upper / expected,
                "ratio_det": bracket.upper / deterministic.accepted_load,
                "ln(1/eps)": math.log(1 / eps),
                "1+1/eps": 1 + 1 / eps,
            }
        )
    return rows


def test_cor1_randomized_vs_deterministic(benchmark, save_artifact):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    for row in rows:
        assert row["ratio_det"] >= 0.8 * row["1+1/eps"], row
        assert row["E_ratio_rand"] <= 2.0 * (row["ln(1/eps)"] + 2.0), row

    advantages = [r["ratio_det"] / r["E_ratio_rand"] for r in rows]
    assert advantages[-1] > advantages[0], "advantage must grow as eps shrinks"
    assert advantages[-1] > 10.0

    save_artifact(
        "cor1_randomized.txt",
        format_table(
            rows,
            title="Corollary 1 — randomized classify-and-select vs deterministic "
            "(bait-and-whale, ratios vs certified OPT upper bound)",
        ),
    )
    benchmark.extra_info["advantage_at_eps_0.01"] = advantages[-1]
