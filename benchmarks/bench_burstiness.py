"""E20 — burstiness stress: MMPP storms and batch arrivals.

Real admission pressure is bursty, not Poisson.  This bench compares the
algorithms on three arrival processes calibrated to similar offered
load — homogeneous Poisson, MMPP-2 (calm/storm), and Poisson batches —
and checks:

* every certified ratio stays within its guarantee on every process
  (Theorem 2 does not care about the arrival law — that is the point of
  worst-case analysis);
* same-instant *batches* are the hard regime for the Threshold rule (many
  commitments against one machine state): its certified ratio under
  batches exceeds its Poisson ratio;
* on all processes the audit discipline holds across all engines.

(Storms do not uniformly hurt every algorithm's *ratio*: MMPP lulls also
shrink the optimum's opportunities, so e.g. greedy's ratio can improve —
the artefact table records the measured directions.)
"""

from functools import partial

from repro.analysis.tables import format_table
from repro.baselines.registry import run_algorithm
from repro.core.guarantees import guarantee_for
from repro.offline.bracket import opt_bracket
from repro.workloads import random_instance
from repro.workloads.arrivals import batch_arrival_instance, mmpp_instance

M, EPS = 3, 0.1
SEEDS = (0, 1, 2)
ALGORITHMS = ("threshold", "greedy", "lee-style")

FAMILIES = {
    "poisson": partial(random_instance, 90, tight_fraction=0.7),
    "mmpp-storms": partial(mmpp_instance, 90, storm_rate_factor=10.0),
    "batches": partial(batch_arrival_instance, 14, mean_batch_size=7.0),
}


def measure():
    rows = []
    for family, factory in FAMILIES.items():
        for algorithm in ALGORITHMS:
            ratios, loads = [], []
            for seed in SEEDS:
                inst = factory(M, EPS, seed=seed)
                bracket = opt_bracket(inst, force_bounds=True)
                result = run_algorithm(algorithm, inst)
                loads.append(result.accepted_load)
                ratios.append(bracket.upper / result.accepted_load)
            rows.append(
                {
                    "family": family,
                    "algorithm": algorithm,
                    "mean_ratio": sum(ratios) / len(ratios),
                    "max_ratio": max(ratios),
                    "mean_load": sum(loads) / len(loads),
                    "guarantee": guarantee_for(algorithm, EPS, M),
                }
            )
    return rows


def test_e20_burstiness(benchmark, save_artifact):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    for row in rows:
        assert row["max_ratio"] <= row["guarantee"] + 1e-9, row

    by_key = {(r["family"], r["algorithm"]): r for r in rows}
    assert (
        by_key[("batches", "threshold")]["mean_ratio"]
        > by_key[("poisson", "threshold")]["mean_ratio"]
    )

    save_artifact(
        "e20_burstiness.txt",
        format_table(
            rows,
            title=f"E20 — arrival-process stress (m={M}, eps={EPS}, "
            f"{len(SEEDS)} seeds; certified ratios vs flow OPT bound)",
        ),
    )
