"""E27 — the live admission service under sustained MMPP load.

``repro serve`` turns the paper's Threshold admission controller into a
long-running request loop; this bench certifies its two headline claims
on a bursty MMPP-2 arrival stream (the E20 stress workload):

* **performance** — sustained decisions/sec and per-offer decision
  latency (p50/p99/p99.9) over the NDJSON socket with a pipelined
  client, plus the graceful-shutdown drain time, measured both with the
  fsync'd decision journal on (the durable production config) and off
  (the raw decision loop);
* **fidelity** — the served decision log replays **bit-identical**
  through the offline batch engine (``verify_decision_log``), i.e. the
  service is the same algorithm the paper analyses, not an
  approximation of it.

Run directly (``python benchmarks/bench_serve.py``) to write the
machine-readable snapshot ``BENCH_serve.json`` at the repository root.
"""

import json
import tempfile
from pathlib import Path

from repro.analysis.tables import format_table
from repro.serve.loadgen import run_bench
from repro.serve.server import ServeConfig
from repro.serve.snapshotter import verify_decision_log
from repro.workloads.arrivals import mmpp_instance

N_JOBS = 3000
MACHINES = 4
EPSILON = 0.5
SEED = 27
WINDOW = 64


def _report_dict(report, label: str) -> dict:
    return {
        "config": label,
        "jobs": report.jobs,
        "accepted": report.accepted,
        "rejected": report.rejected,
        "errors": report.errors,
        "wall_seconds": round(report.wall_seconds, 6),
        "decisions_per_second": round(report.decisions_per_second, 1),
        "latency_p50_ms": round(report.latency_p50_ms, 4),
        "latency_p99_ms": round(report.latency_p99_ms, 4),
        "latency_p999_ms": round(report.latency_p999_ms, 4),
        "drain_seconds": round(report.drain_seconds, 6),
    }


def snapshot() -> dict:
    """Self-hosted server, pipelined socket client, journal on and off."""
    inst = mmpp_instance(
        N_JOBS, machines=MACHINES, epsilon=EPSILON, seed=SEED
    )

    with tempfile.TemporaryDirectory() as tmp:
        log = Path(tmp) / "decisions.jsonl"
        journaled, _ = run_bench(
            ServeConfig(
                machines=MACHINES, epsilon=EPSILON, name=inst.name,
                decision_log=str(log),
            ),
            inst,
            window=WINDOW,
        )
        bit_identical, verify_detail = verify_decision_log(log)

    unjournaled, _ = run_bench(
        ServeConfig(machines=MACHINES, epsilon=EPSILON, name=inst.name),
        inst,
        window=WINDOW,
    )

    return {
        "bench": "E27 live admission service under MMPP load",
        "workload": inst.name,
        "n_jobs": N_JOBS,
        "machines": MACHINES,
        "epsilon": EPSILON,
        "seed": SEED,
        "window": WINDOW,
        "algorithm": "threshold",
        "journaled": _report_dict(journaled, "journaled"),
        "unjournaled": _report_dict(unjournaled, "unjournaled"),
        "bit_identical": bit_identical,
        "verify_detail": verify_detail,
    }


def test_e27_serve_sustained_load(benchmark, save_artifact):
    snap = benchmark.pedantic(snapshot, rounds=1, iterations=1)
    journaled, unjournaled = snap["journaled"], snap["unjournaled"]
    # fidelity: the service IS the batch algorithm, bit for bit
    assert snap["bit_identical"], snap["verify_detail"]
    # the full stream was decided, with no protocol errors, both ways
    for report in (journaled, unjournaled):
        assert report["accepted"] + report["rejected"] == snap["n_jobs"]
        assert report["errors"] == 0
        assert report["decisions_per_second"] > 0
        assert report["latency_p50_ms"] <= report["latency_p99_ms"]
        assert report["drain_seconds"] < 5.0
    benchmark.extra_info.update(
        {
            "decisions_per_second": journaled["decisions_per_second"],
            "latency_p99_ms": journaled["latency_p99_ms"],
            "bit_identical": snap["bit_identical"],
        }
    )
    save_artifact(
        "e27_serve.txt",
        format_table(
            [
                {
                    "config": r["config"],
                    "dec/s": r["decisions_per_second"],
                    "p50 (ms)": r["latency_p50_ms"],
                    "p99 (ms)": r["latency_p99_ms"],
                    "p99.9 (ms)": r["latency_p999_ms"],
                    "drain (s)": r["drain_seconds"],
                }
                for r in (journaled, unjournaled)
            ],
            title=(
                f"E27 — repro serve, {snap['n_jobs']} MMPP jobs, "
                f"window {snap['window']}, bit_identical="
                f"{snap['bit_identical']}"
            ),
        ),
    )


def main() -> int:
    snap = snapshot()
    out = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    out.write_text(json.dumps(snap, indent=2) + "\n")
    for label in ("journaled", "unjournaled"):
        report = snap[label]
        print(f"{label:12s}: {report['decisions_per_second']:10,.0f} dec/s  "
              f"p50 {report['latency_p50_ms']:7.3f} ms  "
              f"p99 {report['latency_p99_ms']:7.3f} ms  "
              f"p99.9 {report['latency_p999_ms']:7.3f} ms  "
              f"drain {report['drain_seconds']:.3f}s")
    print(f"bit-identical replay     : {snap['bit_identical']}")
    print(f"wrote {out}")
    return 0 if snap["bit_identical"] else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
