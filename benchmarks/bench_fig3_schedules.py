"""E7 — Fig. 3: online vs optimal schedule on the highlighted path.

Replays the red path of Fig. 2 (m = 3, eps in [eps_{1,3}, eps_{2,3}),
u = 2, h = 3, J_1 started at t >= 1) and reproduces both schedules:

* the *online* schedule — directly from the simulated duel (blue/orange
  jobs of Fig. 3 = accepted/rejected);
* the *optimal* schedule — reconstructed per Lemma 4's constructive
  argument and verified against the exact offline solver on the emitted
  instance.

Artefact: both Gantt charts plus the load accounting.
"""

import pytest

from repro.adversary.analysis import red_path_schedules
from repro.core.params import c_bound, corner_values
from repro.offline.exact import exact_optimum

M, EPS = 3, 0.2


def build():
    return red_path_schedules(m=M, epsilon=EPS)


def test_fig3_schedules(benchmark, save_artifact):
    result, online_gantt = benchmark.pedantic(build, rounds=1, iterations=1)

    corners = corner_values(M)
    assert corners[1] <= EPS < corners[2], "Fig. 3 setting requires phase k = 2"
    assert result.summary["u"] == 2 and result.summary["final_h"] == 3

    # Exact optimum of the emitted instance certifies the constructive OPT.
    instance = result.schedule.instance
    exact = exact_optimum(instance)
    assert result.constructive_opt == pytest.approx(exact.value, rel=1e-6)

    ratio = result.forced_ratio
    assert ratio == pytest.approx(c_bound(EPS, M), rel=5e-3)

    optimal_gantt = exact.schedule.gantt_ascii(width=72)
    text = (
        f"Fig. 3 reproduction — m={M}, eps={EPS}, path u=2, h=3\n\n"
        f"online schedule (accepted jobs; load={result.algorithm_load:.4f}):\n"
        f"{online_gantt}\n\n"
        f"optimal schedule (load={exact.value:.4f}):\n{optimal_gantt}\n\n"
        f"forced ratio = {ratio:.4f}  (c(eps,m) = {c_bound(EPS, M):.4f})\n"
        f"jobs emitted: {len(instance)}; accepted online: "
        f"{result.schedule.accepted_count}\n"
    )
    save_artifact("fig3_schedules.txt", text)
    from repro.analysis.svg import gantt_svg

    save_artifact(
        "fig3_online.svg",
        gantt_svg(result.schedule, title="Fig. 3 — online schedule (red path)"),
    )
    save_artifact(
        "fig3_optimal.svg",
        gantt_svg(exact.schedule, title="Fig. 3 — optimal schedule"),
    )
    benchmark.extra_info["forced_ratio"] = ratio
    benchmark.extra_info["optimal_load"] = exact.value
