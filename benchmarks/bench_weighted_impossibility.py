"""E15 — the weighted-objective impossibility (Lucier et al., §1).

The paper restricts itself to the load objective ``w_j = p_j`` because,
as it notes in §1, "for general objective functions, any online algorithm
has an unbounded competitive ratio for any slack value" [28].  The
escalation adversary makes this executable: against *every* algorithm in
the non-preemptive registry, the forced weighted ratio grows linearly in
the escalation factor R — i.e. without bound — at *every* slack value,
including the maximal slack 1.

This is the negative-result counterpart of E4: slack rescues the load
objective (Theorem 1/2's finite c(eps, m)) but cannot rescue arbitrary
weights.
"""

from repro.adversary.weighted import weighted_duel
from repro.analysis.tables import format_table
from repro.baselines.greedy import GreedyPolicy
from repro.baselines.lee import LeeStylePolicy
from repro.core.threshold import ThresholdPolicy

ESCALATIONS = [10.0, 100.0, 1000.0]
CONFIGS = [(1, 0.5), (2, 0.2), (3, 0.2), (3, 1.0)]
POLICIES = [ThresholdPolicy, GreedyPolicy, LeeStylePolicy]


def measure():
    rows = []
    for escalation in ESCALATIONS:
        for m, eps in CONFIGS:
            for factory in POLICIES:
                policy = factory()
                result = weighted_duel(policy, m=m, epsilon=eps, escalation=escalation)
                rows.append(
                    {
                        "R": escalation,
                        "m": m,
                        "eps": eps,
                        "algorithm": policy.name,
                        "forced_ratio": result.forced_ratio,
                        "levels_accepted": result.levels_accepted,
                    }
                )
    return rows


def test_e15_weighted_impossibility(benchmark, save_artifact):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Every policy is forced to at least ~R, at every slack.
    for row in rows:
        assert row["forced_ratio"] >= 0.99 * row["R"], row

    # The ratio is genuinely unbounded: scaling R scales the forced ratio.
    for m, eps in CONFIGS:
        for factory in POLICIES:
            name = factory().name
            series = [
                r["forced_ratio"]
                for r in rows
                if r["m"] == m and r["eps"] == eps and r["algorithm"] == name
            ]
            assert series[1] > 5 * series[0] and series[2] > 5 * series[1]

    save_artifact(
        "e15_weighted_impossibility.txt",
        format_table(
            rows,
            title="E15 — general weights: forced ratio ~ R for every algorithm "
            "and every slack (Lucier et al.'s impossibility, executable)",
        ),
    )
    benchmark.extra_info["max_forced_ratio"] = max(r["forced_ratio"] for r in rows)
