"""E11 — ablation: the threshold multipliers f_k..f_m.

Two mis-tuning axes, each measured on both an adversarial and a benign
workload, showing the paper's parameters sit on the Pareto frontier:

* **factor scaling** — multiply every f_h by s:
  - s < 1 (laxer admission): the three-phase adversary's forced ratio
    strictly worsens (the algorithm over-commits in phase 2);
  - s > 1 (stricter admission): worst-case stays put against this
    adversary, but benign accepted load strictly drops — pure loss;
* **slack mis-estimation** — run with parameters derived for a wrong
  slack eps' on instances with true slack eps: underestimating the slack
  (conservative) costs benign load; overestimating voids the worst-case
  guarantee (forced ratio exceeds c for the true slack).
"""

from repro.adversary.base import duel
from repro.analysis.tables import format_table
from repro.core.params import c_bound, threshold_parameters
from repro.core.threshold import ThresholdPolicy
from repro.engine.simulator import simulate
from repro.workloads import random_instance

M, EPS = 3, 0.2
SCALES = [0.5, 0.75, 1.0, 2.0, 4.0]
ASSUMED_EPS = [0.05, 0.2, 0.8]


def measure_scaling():
    benign = random_instance(150, M, EPS, seed=5)
    rows = []
    for scale in SCALES:
        forced = duel(ThresholdPolicy(factor_scale=scale), m=M, epsilon=EPS).forced_ratio
        load = simulate(ThresholdPolicy(factor_scale=scale), benign).accepted_load
        rows.append(
            {
                "factor_scale": scale,
                "forced_ratio": forced,
                "benign_load": load,
                "c(eps,m)": c_bound(EPS, M),
            }
        )
    return rows


def measure_mistuning():
    benign = random_instance(150, M, EPS, seed=5)
    rows = []
    for eps_assumed in ASSUMED_EPS:
        params = threshold_parameters(eps_assumed, M)
        policy = ThresholdPolicy(parameters=params)
        forced = duel(
            ThresholdPolicy(parameters=params), m=M, epsilon=EPS
        ).forced_ratio
        load = simulate(policy, benign).accepted_load
        rows.append(
            {
                "eps_assumed": eps_assumed,
                "eps_true": EPS,
                "forced_ratio": forced,
                "benign_load": load,
            }
        )
    return rows


def test_ablation_factor_scaling(benchmark, save_artifact):
    rows = benchmark.pedantic(measure_scaling, rounds=1, iterations=1)
    by_scale = {r["factor_scale"]: r for r in rows}

    # Laxer than the paper: strictly worse worst case.
    assert by_scale[0.5]["forced_ratio"] > by_scale[1.0]["forced_ratio"] * 1.1
    # Stricter than the paper: strictly less benign load, no worst-case win.
    assert by_scale[4.0]["benign_load"] < by_scale[1.0]["benign_load"] * 0.95
    assert by_scale[4.0]["forced_ratio"] >= by_scale[1.0]["forced_ratio"] - 1e-6

    save_artifact(
        "ablation_factor_scaling.txt",
        format_table(rows, title="E11a — scaling the f multipliers (m=3, eps=0.2)"),
    )


def test_ablation_slack_mistuning(benchmark, save_artifact):
    rows = benchmark.pedantic(measure_mistuning, rounds=1, iterations=1)
    by_eps = {r["eps_assumed"]: r for r in rows}
    c_true = c_bound(EPS, M)

    # Correct tuning achieves ~c.
    assert abs(by_eps[EPS]["forced_ratio"] - c_true) / c_true < 5e-3
    # Overestimating the slack (0.8 > 0.2) voids the guarantee.
    assert by_eps[0.8]["forced_ratio"] > c_true * 1.1
    # Underestimating (0.05 < 0.2) keeps the worst case near c but pays on
    # benign load.
    assert by_eps[0.05]["benign_load"] < by_eps[EPS]["benign_load"] + 1e-9

    save_artifact(
        "ablation_slack_mistuning.txt",
        format_table(
            rows,
            title="E11b — running with parameters for the wrong slack "
            f"(true eps = {EPS}, m = {M}, c = {c_true:.4f})",
        ),
    )
