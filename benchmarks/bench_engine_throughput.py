"""E16 — engine performance: simulation throughput and scaling.

Not a paper artefact, but a deliverable of a production-quality
implementation: the simulator must sustain laptop-scale sweeps.  These
benches track

* jobs/second of the full admission loop (threshold and greedy) on a
  5 000-job Poisson stream over 4 machines;
* near-linear scaling in the stream length (the sorted-array
  ``MachineState`` makes per-decision work ``O(m log n)``; the original
  linear-scan implementation profiled at 3.5k jobs/s on 8k jobs —
  the regression guard below would catch such a slide);
* bound-solver throughput (full parameter solve, m = 8).
"""

import time

from repro.baselines.greedy import GreedyPolicy
from repro.core.params import BoundFunction
from repro.core.threshold import ThresholdPolicy
from repro.engine.simulator import simulate
from repro.workloads import random_instance

N_JOBS = 5000
MACHINES = 4

_INSTANCE = random_instance(N_JOBS, MACHINES, 0.2, seed=42)


def test_throughput_threshold(benchmark):
    schedule = benchmark(lambda: simulate(ThresholdPolicy(), _INSTANCE))
    assert schedule.accepted_count > 0
    benchmark.extra_info["jobs_per_second"] = N_JOBS / benchmark.stats["mean"]


def test_throughput_greedy(benchmark):
    schedule = benchmark(lambda: simulate(GreedyPolicy(), _INSTANCE))
    assert schedule.accepted_count > 0
    benchmark.extra_info["jobs_per_second"] = N_JOBS / benchmark.stats["mean"]


def test_scaling_is_near_linear(benchmark, save_artifact):
    """Doubling the stream should not much more than double the runtime."""

    def measure():
        rows = []
        for n in (2000, 4000, 8000, 16000):
            inst = random_instance(n, MACHINES, 0.2, seed=7)
            t0 = time.perf_counter()
            simulate(ThresholdPolicy(), inst)
            dt = time.perf_counter() - t0
            rows.append({"n": n, "seconds": dt, "jobs_per_s": n / dt})
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    # Throughput may dip with n (cache effects, machine-state growth) but a
    # quadratic engine collapses by >4x over this range; require < 2.5x.
    rates = [r["jobs_per_s"] for r in rows]
    assert min(rates) > max(rates) / 2.5, rows
    from repro.analysis.tables import format_table

    save_artifact(
        "e16_engine_scaling.txt",
        format_table(rows, title="E16 — simulator scaling (threshold, m=4)"),
    )


def test_bound_solver_throughput(benchmark):
    bf = BoundFunction(8)

    def solve_many():
        return [bf.value(e) for e in (0.01, 0.05, 0.1, 0.3, 0.7, 1.0)]

    values = benchmark(solve_many)
    assert all(v > 0 for v in values)
