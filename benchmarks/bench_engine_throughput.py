"""E16/E25 — engine performance: simulation throughput and scaling.

Not a paper artefact, but a deliverable of a production-quality
implementation: the simulator must sustain laptop-scale sweeps.  These
benches track

* jobs/second of the full admission loop (threshold and greedy) on a
  5 000-job Poisson stream over 4 machines;
* near-linear scaling in the stream length (the sorted-array
  ``MachineState`` makes per-decision work ``O(m log n)``; the original
  linear-scan implementation profiled at 3.5k jobs/s on 8k jobs —
  the regression guard below would catch such a slide);
* bound-solver throughput (full parameter solve, m = 8).

Run directly (``python benchmarks/bench_engine_throughput.py``) to time
every commitment-model engine on the shared kernel and write the
machine-readable snapshot ``BENCH_engine.json`` (jobs/s per model) at the
repository root — the artefact the throughput regression guard compares
against.

E25 extends the snapshot with the **batch backend**
(:mod:`repro.engine.backend`): the same workloads through the
structure-of-arrays NumPy kernels, amortised over a 64-instance batch for
the immediate model (the batch kernel's unit of work) and per-instance for
penalties (that kernel vectorises within an instance).  The snapshot
stamps the python/numpy versions and per-backend speedups so regressions
are attributable.
"""

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.baselines.greedy import GreedyPolicy
from repro.core.params import BoundFunction
from repro.core.threshold import ThresholdPolicy
from repro.engine.simulator import simulate
from repro.workloads import random_instance

N_JOBS = 5000
MACHINES = 4

_INSTANCE = random_instance(N_JOBS, MACHINES, 0.2, seed=42)


def test_throughput_threshold(benchmark):
    schedule = benchmark(lambda: simulate(ThresholdPolicy(), _INSTANCE))
    assert schedule.accepted_count > 0
    benchmark.extra_info["jobs_per_second"] = N_JOBS / benchmark.stats["mean"]


def test_throughput_greedy(benchmark):
    schedule = benchmark(lambda: simulate(GreedyPolicy(), _INSTANCE))
    assert schedule.accepted_count > 0
    benchmark.extra_info["jobs_per_second"] = N_JOBS / benchmark.stats["mean"]


def test_scaling_is_near_linear(benchmark, save_artifact):
    """Doubling the stream should not much more than double the runtime."""

    def measure():
        rows = []
        for n in (2000, 4000, 8000, 16000):
            inst = random_instance(n, MACHINES, 0.2, seed=7)
            t0 = time.perf_counter()
            simulate(ThresholdPolicy(), inst)
            dt = time.perf_counter() - t0
            rows.append({"n": n, "seconds": dt, "jobs_per_s": n / dt})
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    # Throughput may dip with n (cache effects, machine-state growth) but a
    # quadratic engine collapses by >4x over this range; require < 2.5x.
    rates = [r["jobs_per_s"] for r in rows]
    assert min(rates) > max(rates) / 2.5, rows
    from repro.analysis.tables import format_table

    save_artifact(
        "e16_engine_scaling.txt",
        format_table(rows, title="E16 — simulator scaling (threshold, m=4)"),
    )


def test_bound_solver_throughput(benchmark):
    bf = BoundFunction(8)

    def solve_many():
        return [bf.value(e) for e in (0.01, 0.05, 0.1, 0.3, 0.7, 1.0)]

    values = benchmark(solve_many)
    assert all(v > 0 for v in values)


# ---------------------------------------------------------------------------
# Direct invocation: per-model kernel throughput snapshot (BENCH_engine.json).
# ---------------------------------------------------------------------------


#: Single-machine twin of the main stream, for the m=1-only algorithms
#: (``goldwasser-kerbikov``, ``classify-select``).
_INSTANCE_1 = random_instance(N_JOBS, 1, 0.2, seed=42)


def _model_runs():
    """(label, thunk) per commitment model, all on the same 5k-job stream."""
    from repro.baselines.dasgupta_palis import DasGuptaPalisPolicy
    from repro.baselines.registry import run_algorithm
    from repro.engine.admission import AdmissionLazyPolicy, simulate_admission
    from repro.engine.delayed import DelayedGreedyPolicy, simulate_delayed
    from repro.engine.penalties import RevocableGreedyPolicy, simulate_with_penalties
    from repro.engine.preemptive import simulate_preemptive

    eps = _INSTANCE.epsilon
    return [
        ("immediate[threshold]", lambda: simulate(ThresholdPolicy(), _INSTANCE)),
        ("immediate[greedy]", lambda: simulate(GreedyPolicy(), _INSTANCE)),
        (
            "immediate[lee-style]",
            lambda: run_algorithm("lee-style", _INSTANCE),
        ),
        (
            "immediate[goldwasser-kerbikov]",
            lambda: run_algorithm("goldwasser-kerbikov", _INSTANCE_1),
        ),
        (
            "immediate[random-admission]",
            lambda: run_algorithm("random-admission", _INSTANCE),
        ),
        (
            "immediate[classify-select]",
            lambda: run_algorithm("classify-select", _INSTANCE_1),
        ),
        (
            "delayed[delayed-greedy]",
            lambda: simulate_delayed(DelayedGreedyPolicy(), _INSTANCE, eps / 2),
        ),
        (
            "admission[admission-greedy]",
            lambda: run_algorithm("admission-greedy", _INSTANCE),
        ),
        (
            "admission[admission-lazy]",
            lambda: simulate_admission(AdmissionLazyPolicy(), _INSTANCE),
        ),
        (
            "penalties[revocable-greedy]",
            lambda: simulate_with_penalties(RevocableGreedyPolicy(), _INSTANCE, 0.5),
        ),
        (
            "preemptive[dasgupta-palis]",
            lambda: simulate_preemptive(DasGuptaPalisPolicy(), _INSTANCE),
        ),
    ]


#: Batch size for the immediate-model batch-backend rows (E25).
BATCH_SIZE = 64


def _batch_runs():
    """(label, total_jobs, thunk) per batch-backend row (E25).

    Immediate-model rows amortise over a 64-lane batch (that kernel's
    unit of work); the delayed/admission/penalties kernels win *within*
    one instance, so their rows run per-instance like the scalar ones.
    """
    from repro.engine.batch import (
        IMMEDIATE_RULES,
        run_classify_select_batch,
        run_immediate_batch,
        run_random_admission_batch,
    )
    from repro.engine.batch_delayed import run_admission_batch, run_delayed_batch
    from repro.engine.batch_penalties import run_penalties_batch

    batch = [
        random_instance(N_JOBS, MACHINES, 0.2, seed=42 + i) for i in range(BATCH_SIZE)
    ]
    batch_1 = [
        random_instance(N_JOBS, 1, 0.2, seed=42 + i) for i in range(BATCH_SIZE)
    ]
    eps = _INSTANCE.epsilon
    return [
        (
            "immediate[threshold]",
            BATCH_SIZE * N_JOBS,
            lambda: run_immediate_batch(IMMEDIATE_RULES["threshold"], batch),
        ),
        (
            "immediate[greedy]",
            BATCH_SIZE * N_JOBS,
            lambda: run_immediate_batch(IMMEDIATE_RULES["greedy"], batch),
        ),
        (
            "immediate[lee-style]",
            BATCH_SIZE * N_JOBS,
            lambda: run_immediate_batch(IMMEDIATE_RULES["lee-style"], batch),
        ),
        (
            "immediate[goldwasser-kerbikov]",
            BATCH_SIZE * N_JOBS,
            lambda: run_immediate_batch(
                IMMEDIATE_RULES["goldwasser-kerbikov"], batch_1
            ),
        ),
        (
            "immediate[random-admission]",
            BATCH_SIZE * N_JOBS,
            lambda: run_random_admission_batch(batch),
        ),
        (
            "immediate[classify-select]",
            BATCH_SIZE * N_JOBS,
            lambda: run_classify_select_batch(batch_1),
        ),
        (
            "delayed[delayed-greedy]",
            N_JOBS,
            lambda: run_delayed_batch([_INSTANCE], delta=eps / 2),
        ),
        (
            "admission[admission-greedy]",
            N_JOBS,
            lambda: run_admission_batch([_INSTANCE], algorithm="admission-greedy"),
        ),
        (
            "admission[admission-lazy]",
            N_JOBS,
            lambda: run_admission_batch([_INSTANCE], algorithm="admission-lazy"),
        ),
        (
            "penalties[revocable-greedy]",
            N_JOBS,
            lambda: run_penalties_batch([_INSTANCE], 0.5),
        ),
    ]


def _best_of(run, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - t0)
    return best


def snapshot_throughput(rounds: int = 3) -> dict:
    """Best-of-*rounds* jobs/s for every engine; pure measurement, no I/O."""
    import os

    from repro.engine import jit

    results = {}
    for label, run in _model_runs():
        results[label] = round(N_JOBS / _best_of(run, rounds), 1)
    batch_results = {}
    for label, total, run in _batch_runs():
        rate = total / _best_of(run, rounds)
        batch_results[label] = {
            "jobs_per_second": round(rate, 1),
            "batch_size": total // N_JOBS,
            "speedup_vs_scalar": round(rate / results[label], 2),
        }
    jit_results = {}
    numba_version = None
    if jit.numba_available():
        import numba

        numba_version = numba.__version__
        prior = os.environ.get(jit.JIT_ENV)
        os.environ[jit.JIT_ENV] = "1"
        try:
            for label, total, run in _batch_runs():
                if not label.startswith("immediate["):
                    continue  # the jit seam covers the immediate step loop
                run()  # warm the compile cache outside the timed rounds
                rate = total / _best_of(run, rounds)
                jit_results[label] = {
                    "jobs_per_second": round(rate, 1),
                    "batch_size": total // N_JOBS,
                    "speedup_vs_scalar": round(rate / results[label], 2),
                    "speedup_vs_batch": round(
                        rate / batch_results[label]["jobs_per_second"], 2
                    ),
                }
        finally:
            if prior is None:
                os.environ.pop(jit.JIT_ENV, None)
            else:
                os.environ[jit.JIT_ENV] = prior
    backends = {
        "scalar": {"jobs_per_second": results},
        "batch": batch_results,
    }
    if jit_results:
        backends["jit"] = jit_results
    return {
        "n_jobs": N_JOBS,
        "machines": MACHINES,
        "epsilon": _INSTANCE.epsilon,
        "seed": 42,
        "rounds": rounds,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "numba": numba_version,
        "jobs_per_second": results,
        "backends": backends,
    }


def main() -> int:
    snapshot = snapshot_throughput()
    out = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    out.write_text(json.dumps(snapshot, indent=2) + "\n")
    for label, rate in snapshot["jobs_per_second"].items():
        print(f"{label:33s} {rate:>12,.0f} jobs/s  [scalar]")
    for label, row in snapshot["backends"]["batch"].items():
        print(
            f"{label:33s} {row['jobs_per_second']:>12,.0f} jobs/s  "
            f"[batch x{row['batch_size']}, {row['speedup_vs_scalar']}x scalar]"
        )
    for label, row in snapshot["backends"].get("jit", {}).items():
        print(
            f"{label:33s} {row['jobs_per_second']:>12,.0f} jobs/s  "
            f"[jit x{row['batch_size']}, {row['speedup_vs_scalar']}x scalar, "
            f"{row['speedup_vs_batch']}x batch]"
        )
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
