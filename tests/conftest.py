"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model import Instance, Job


@pytest.fixture(autouse=True)
def _hermetic_bracket_cache(tmp_path_factory, monkeypatch):
    """Point the default bracket-cache directory inside the test tree.

    The sweep CLI caches offline brackets by default; without this, tests
    exercising the default path would write into the user's real
    ``~/.cache/repro/brackets``.
    """
    monkeypatch.setenv(
        "REPRO_CACHE_DIR", str(tmp_path_factory.mktemp("bracket-cache"))
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for tests needing ad-hoc randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_instance() -> Instance:
    """Three easy jobs on two machines, slack 0.5."""
    jobs = [
        Job(0.0, 1.0, 4.0),
        Job(0.5, 2.0, 6.0),
        Job(1.0, 1.0, 5.0),
    ]
    return Instance(jobs, machines=2, epsilon=0.5, name="tiny")


@pytest.fixture
def single_machine_instance() -> Instance:
    """Five jobs on one machine with mixed slack, epsilon 0.25."""
    jobs = [
        Job(0.0, 1.0, 1.25),
        Job(0.2, 0.5, 2.0),
        Job(1.0, 2.0, 6.0),
        Job(2.0, 1.0, 3.25),
        Job(3.0, 0.4, 4.0),
    ]
    return Instance(jobs, machines=1, epsilon=0.25, name="single5")


def make_tight_jobs(
    releases: list[float], processings: list[float], epsilon: float
) -> list[Job]:
    """Jobs at exactly the slack frontier — helper used across modules."""
    return [
        Job(r, p, r + (1.0 + epsilon) * p)
        for r, p in zip(releases, processings)
    ]
