"""Unit tests for Algorithm 1 (ThresholdPolicy)."""

import pytest

from repro.core.params import threshold_parameters
from repro.core.threshold import AllocationRule, ThresholdPolicy
from repro.engine.simulator import simulate
from repro.model.instance import Instance
from repro.model.job import Job, tight_deadline
from repro.model.machine import MachineState


def run(jobs, machines, epsilon, **policy_kwargs):
    inst = Instance(jobs, machines=machines, epsilon=epsilon)
    return simulate(ThresholdPolicy(**policy_kwargs), inst)


class TestAcceptanceRule:
    def test_accepts_on_empty_system(self):
        s = run([Job(0.0, 1.0, 2.0)], machines=2, epsilon=0.5)
        assert s.accepted_count == 1

    def test_single_machine_matches_goldwasser_rule(self):
        # m = 1: accept iff d >= t + l * (1+eps)/eps.
        eps = 0.5
        jobs = [
            Job(0.0, 1.0, 10.0),  # accepted, load becomes 1
            # at t=0? no: release 0.5, outstanding 0.5, threshold 0.5+0.5*3=2.0
            Job(0.5, 0.9, 1.9),  # d < 2.0 -> reject
            Job(0.5, 1.0, 2.1),  # d >= 2.0 -> accept
        ]
        s = run(jobs, machines=1, epsilon=eps)
        assert not s.is_accepted(1)
        assert s.is_accepted(2)

    def test_threshold_uses_least_loaded_machines_only(self):
        # m = 3, eps = 0.2 -> k = 2: the most loaded machine is ignored.
        eps = 0.2
        params = threshold_parameters(eps, 3)
        assert params.k == 2
        jobs = [
            Job(0.0, 5.0, 100.0),  # big job onto one machine
            Job(0.0, 1.0, 6.0),  # would be rejected if rank-1 load counted
        ]
        s = run(jobs, machines=3, epsilon=eps)
        # rank-1 load is 5 -> ignoring it, ranks 2..3 have load 0 ->
        # threshold = t -> accept.
        assert s.accepted_count == 2

    def test_rejects_below_threshold(self):
        eps = 0.2  # m=2 -> k=1, f = [f_1, f_2] with f_2 = 6
        params = threshold_parameters(eps, 2)
        assert params.f[-1] == pytest.approx(6.0)
        policy = ThresholdPolicy()
        policy.reset(2, eps)
        m0, m1 = MachineState(0), MachineState(1)
        m0.commit(Job(0.0, 1.0, 100.0, job_id=90), 0.0)
        m1.commit(Job(0.0, 1.0, 100.0, job_id=91), 0.0)
        # Both loads are 1 -> d_lim = max(f_1, f_2) = 6 at t = 0.
        reject = policy.on_submission(Job(0.0, 1.0, 5.9, job_id=1), 0.0, [m0, m1])
        accept = policy.on_submission(Job(0.0, 1.0, 6.0, job_id=2), 0.0, [m0, m1])
        assert not reject.accepted
        assert accept.accepted
        assert reject.info["d_lim"] == pytest.approx(6.0)

    def test_decision_info_carries_threshold(self):
        s = run([Job(0.0, 1.0, 3.0)], machines=1, epsilon=0.5)
        trace = s.meta["trace"]
        assert "d_lim" in trace.records[0].decision.info


class TestAllocation:
    def _loaded_machines(self, t=0.0):
        m0, m1, m2 = MachineState(0), MachineState(1), MachineState(2)
        m0.commit(Job(0.0, 3.0, 100.0, job_id=90), 0.0)
        m1.commit(Job(0.0, 1.0, 100.0, job_id=91), 0.0)
        return [m0, m1, m2]

    def test_best_fit_picks_most_loaded_candidate(self):
        policy = ThresholdPolicy()
        policy.reset(3, 0.2)
        machines = self._loaded_machines()
        job = Job(0.0, 1.0, 100.0, job_id=1)
        decision = policy.on_submission(job, 0.0, machines)
        assert decision.accepted and decision.machine == 0
        assert decision.start == pytest.approx(3.0)

    def test_best_fit_skips_non_candidates(self):
        policy = ThresholdPolicy()
        policy.reset(3, 0.2)
        machines = self._loaded_machines()
        # Deadline 3.5 rules out machine 0 (start 3.0 + p 1.0 = 4.0 > 3.5).
        job = Job(0.0, 1.0, 3.5, job_id=1)
        decision = policy.on_submission(job, 0.0, machines)
        assert decision.accepted and decision.machine == 1

    def test_worst_fit_picks_least_loaded(self):
        policy = ThresholdPolicy(allocation=AllocationRule.WORST_FIT)
        policy.reset(3, 0.2)
        decision = policy.on_submission(
            Job(0.0, 1.0, 100.0, job_id=1), 0.0, self._loaded_machines()
        )
        assert decision.machine == 2

    def test_first_fit_picks_lowest_index(self):
        policy = ThresholdPolicy(allocation=AllocationRule.FIRST_FIT)
        policy.reset(3, 0.2)
        decision = policy.on_submission(
            Job(0.0, 1.0, 3.5, job_id=1), 0.0, self._loaded_machines()
        )
        assert decision.machine == 1  # machine 0 not a candidate

    def test_start_immediately_after_outstanding_load(self):
        s = run(
            [Job(0.0, 1.0, 50.0), Job(0.0, 1.0, 50.0), Job(0.0, 2.0, 50.0)],
            machines=1,
            epsilon=1.0,
        )
        starts = sorted(a.start for a in s.assignments.values())
        assert starts == [0.0, 1.0, 2.0]


class TestClaim1Invariant:
    @pytest.mark.parametrize("eps", [0.05, 0.2, 0.5, 1.0])
    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_tight_jobs_never_miss(self, eps, m):
        # A stream of tight jobs at increasing releases; the audit inside
        # simulate() would raise on any deadline miss (Claim 1).
        jobs = []
        t = 0.0
        for i in range(25):
            p = 0.5 + (i % 5) * 0.5
            jobs.append(Job(t, p, tight_deadline(t, p, eps)))
            t += 0.3
        s = run(jobs, machines=m, epsilon=eps)
        s.audit()

    def test_accepted_job_always_has_candidate(self):
        # Stress with simultaneous arrivals; the policy asserts internally
        # if the Claim-1 candidate guarantee ever breaks.
        jobs = [Job(0.0, 1.0, 8.0) for _ in range(10)]
        s = run(jobs, machines=2, epsilon=0.3)
        s.audit()


class TestConfiguration:
    def test_epsilon_above_one_clamped(self):
        s = run([Job(0.0, 1.0, 10.0)], machines=2, epsilon=3.0)
        assert s.accepted_count == 1

    def test_explicit_parameters_must_match_m(self):
        params = threshold_parameters(0.2, 3)
        policy = ThresholdPolicy(parameters=params)
        with pytest.raises(ValueError, match="m="):
            policy.reset(2, 0.2)

    def test_factor_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            ThresholdPolicy(factor_scale=0.0)

    def test_name_reflects_variant(self):
        assert ThresholdPolicy().name == "threshold"
        assert "worst-fit" in ThresholdPolicy(allocation=AllocationRule.WORST_FIT).name
        assert "fx2" in ThresholdPolicy(factor_scale=2.0).name

    def test_describe_after_reset(self):
        policy = ThresholdPolicy()
        policy.reset(3, 0.2)
        d = policy.describe()
        assert d["m"] == 3 and d["k"] == 2 and d["c"] > 1

    def test_threshold_at_exposed(self):
        policy = ThresholdPolicy()
        policy.reset(2, 0.2)
        d_lim = policy.threshold_at(1.0, [1.0, 1.0])
        assert d_lim == pytest.approx(1.0 + 6.0)  # f_2 = (1+.2)/.2 = 6
