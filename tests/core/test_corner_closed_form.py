"""Tests for the exact rational corners and the derived closed form.

The closed form eps_{k,m} = (km / (km + 2m + 1))^{m-k} is derived in this
reproduction (see ``corner_closed_form``'s docstring for the proof); here
it is validated against exact rational arithmetic for all m <= 12 and
against the float pipeline.
"""

from fractions import Fraction

import pytest

from repro.core.params import (
    corner_closed_form,
    corner_values,
    corner_values_exact,
)


class TestExactCorners:
    def test_known_values(self):
        assert corner_values_exact(2)[1] == Fraction(2, 7)
        assert corner_values_exact(3)[1] == Fraction(9, 100)
        assert corner_values_exact(3)[2] == Fraction(6, 13)
        assert corner_values_exact(4)[3] == Fraction(4, 7)

    def test_endpoints(self):
        for m in (1, 3, 6):
            corners = corner_values_exact(m)
            assert corners[0] == 0 and corners[-1] == 1

    def test_matches_float_pipeline(self):
        for m in range(1, 9):
            for exact, approx in zip(corner_values_exact(m), corner_values(m)):
                assert float(exact) == pytest.approx(approx, abs=1e-12)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            corner_values_exact(0)


class TestClosedForm:
    @pytest.mark.parametrize("m", range(1, 13))
    def test_matches_exact_rationals(self, m):
        exact = corner_values_exact(m)
        for k in range(1, m):
            conjectured = Fraction(k * m, k * m + 2 * m + 1) ** (m - k)
            assert conjectured == exact[k]
            assert corner_closed_form(k, m) == pytest.approx(float(exact[k]), rel=1e-14)

    def test_k_equals_m_is_one(self):
        # (km/(km+2m+1))^0 = 1: the right end of the domain.
        for m in (1, 2, 5):
            assert corner_closed_form(m, m) == 1.0

    def test_last_interior_corner_formula(self):
        # k = m-1 specialises to m(m-1)/(m^2+m+1).
        for m in (2, 3, 4, 7):
            assert corner_closed_form(m - 1, m) == pytest.approx(
                m * (m - 1) / (m * m + m + 1)
            )

    def test_first_corner_formula(self):
        # k = 1 specialises to (m/(3m+1))^{m-1}.
        for m in (2, 3, 4, 5):
            assert corner_closed_form(1, m) == pytest.approx(
                (m / (3 * m + 1)) ** (m - 1)
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            corner_closed_form(0, 3)
        with pytest.raises(ValueError):
            corner_closed_form(4, 3)
