"""Unit tests for the published-guarantee registry."""

import math

import pytest

from repro.core.guarantees import (
    DELAYED_EXECUTION_LOSS,
    GUARANTEES,
    classify_select_bound,
    dasgupta_palis_bound,
    goldwasser_kerbikov_bound,
    greedy_bound,
    guarantee_for,
    lee_bound,
    lower_bound,
    migration_bound,
    parameters_summary,
    theorem2_bound,
)
from repro.core.params import c_bound, phase_index


class TestTheorem2Bound:
    def test_exact_for_small_phase(self):
        # eps = 0.2, m = 3 -> k = 2 <= 3: bound equals c exactly.
        assert phase_index(0.2, 3) == 2
        assert theorem2_bound(0.2, 3) == pytest.approx(c_bound(0.2, 3))

    def test_adds_loss_for_large_phase(self):
        # Find a (eps, m) with k >= 4: last phase of m = 5 at eps = 0.9.
        assert phase_index(0.9, 5) == 5
        assert theorem2_bound(0.9, 5) == pytest.approx(
            c_bound(0.9, 5) + DELAYED_EXECUTION_LOSS
        )

    def test_loss_constant_value(self):
        assert DELAYED_EXECUTION_LOSS == pytest.approx((3 - math.e) / (math.e - 1))
        assert DELAYED_EXECUTION_LOSS == pytest.approx(0.1639534137, abs=1e-9)

    def test_dominates_lower_bound(self):
        for eps in [0.05, 0.2, 0.5, 1.0]:
            for m in [1, 2, 3, 4, 6]:
                assert theorem2_bound(eps, m) >= lower_bound(eps, m) - 1e-12


class TestClassicBounds:
    def test_greedy_bound(self):
        assert greedy_bound(0.25, 4) == pytest.approx(6.0)

    def test_goldwasser_matches_c_m1(self):
        for eps in [0.1, 0.5, 1.0]:
            assert goldwasser_kerbikov_bound(eps) == pytest.approx(c_bound(eps, 1))

    def test_lee_bound_shape(self):
        # 1 + m + m eps^{-1/m}; decreasing in m for small eps.
        assert lee_bound(0.01, 1) == pytest.approx(2 + 100)
        assert lee_bound(0.01, 4) < lee_bound(0.01, 1)

    def test_lee_dominates_threshold_bound(self):
        # The paper improves on Lee: c(eps, m) <= 1 + m + m eps^{-1/m}.
        for eps in [0.01, 0.1, 0.5]:
            for m in [1, 2, 3, 4]:
                assert theorem2_bound(eps, m) <= lee_bound(eps, m) + 1e-9

    def test_dasgupta_palis(self):
        assert dasgupta_palis_bound(0.5, 3) == pytest.approx(3.0)

    def test_migration_bound(self):
        assert migration_bound(1.0, 8) == pytest.approx(2 * math.log(2))

    def test_preemptive_helps_on_single_machine(self):
        # On one machine preemption strictly helps: 1 + 1/eps < 2 + 1/eps.
        assert dasgupta_palis_bound(0.05, 1) < c_bound(0.05, 1)

    def test_parallelism_beats_per_machine_preemption(self):
        # For m >= 2 the paper's non-preemptive bound already undercuts the
        # per-machine preemptive 1 + 1/eps in the small-slack regime.
        assert c_bound(0.05, 2) < dasgupta_palis_bound(0.05, 2)


class TestRegistry:
    def test_known_names_resolve(self):
        for name in ["threshold", "greedy", "lee-style", "dasgupta-palis"]:
            assert guarantee_for(name, 0.2, 2) is not None

    def test_variant_names_fall_back_to_base(self):
        base = guarantee_for("greedy", 0.2, 2)
        assert guarantee_for("greedy[least-loaded]", 0.2, 2) == base

    def test_unknown_name_returns_none(self):
        assert guarantee_for("nonsense", 0.2, 2) is None

    def test_all_registry_entries_callable(self):
        for name, fn in GUARANTEES.items():
            value = fn(0.3, 2)
            assert value > 0, name

    def test_classify_select_bound_positive(self):
        assert classify_select_bound(0.01) > 0

    def test_parameters_summary_keys(self):
        d = parameters_summary(0.2, 3)
        assert d["k"] == 2 and d["m"] == 3
        assert d["f_m"] == pytest.approx(6.0)
