"""Decision-table tests: the Threshold frontier, phase by phase.

For hand-crafted machine loads in every phase k = 1..4, these tests pin
the exact acceptance frontier d_lim = t + max_{h in k..m} l(m_h) f_h
against independently computed values — the finest-grained check that
Eqs. (9)/(10) are implemented verbatim (rank ordering, which ranks
participate, and the multiplier each rank receives).
"""

import pytest

from repro.core.params import threshold_parameters
from repro.core.threshold import ThresholdPolicy


def frontier(m: int, eps: float, loads: list[float], t: float = 0.0) -> float:
    policy = ThresholdPolicy()
    policy.reset(m, eps)
    return policy.threshold_at(t, loads)


class TestPhaseK1:
    """m=2, eps=0.1 -> k=1: every machine participates."""

    M, EPS = 2, 0.1

    def test_parameters(self):
        p = threshold_parameters(self.EPS, self.M)
        assert p.k == 1
        assert p.f[-1] == pytest.approx(11.0)  # (1+0.1)/0.1

    def test_empty_system_frontier_is_now(self):
        assert frontier(self.M, self.EPS, [0.0, 0.0], t=3.0) == pytest.approx(3.0)

    def test_single_loaded_machine_uses_f1(self):
        p = threshold_parameters(self.EPS, self.M)
        # loads sorted desc: [5, 0]; rank 1 -> f_1, rank 2 -> f_2 * 0.
        assert frontier(self.M, self.EPS, [5.0, 0.0]) == pytest.approx(5.0 * p.f[0])

    def test_max_over_ranks(self):
        p = threshold_parameters(self.EPS, self.M)
        # loads [5, 1]: max(5 f_1, 1 f_2); f_1 ~ 3.15, f_2 = 11 -> 15.76 vs 11.
        expected = max(5.0 * p.f[0], 1.0 * p.f[1])
        assert frontier(self.M, self.EPS, [5.0, 1.0]) == pytest.approx(expected)

    def test_smaller_load_can_dominate_via_bigger_factor(self):
        p = threshold_parameters(self.EPS, self.M)
        # loads [2, 1]: 2 f_1 ~ 6.3 < 1 * f_2 = 11 -> the rank-2 term wins.
        assert frontier(self.M, self.EPS, [2.0, 1.0]) == pytest.approx(1.0 * p.f[1])
        assert 1.0 * p.f[1] > 2.0 * p.f[0]

    def test_physical_order_irrelevant(self):
        assert frontier(self.M, self.EPS, [1.0, 5.0]) == frontier(
            self.M, self.EPS, [5.0, 1.0]
        )


class TestPhaseK2:
    """m=3, eps=0.2 -> k=2: the most loaded machine is exempt."""

    M, EPS = 3, 0.2

    def test_parameters(self):
        p = threshold_parameters(self.EPS, self.M)
        assert p.k == 2
        assert p.f[0] == pytest.approx(2.9079351, abs=1e-6)
        assert p.f[1] == pytest.approx(6.0)

    def test_rank1_load_ignored(self):
        # Huge load on one machine, zeros elsewhere: frontier stays at t.
        assert frontier(self.M, self.EPS, [100.0, 0.0, 0.0]) == pytest.approx(0.0)

    def test_rank2_and_rank3_participate(self):
        p = threshold_parameters(self.EPS, self.M)
        # loads desc [9, 4, 1]: max(4 f_2, 1 f_3) = max(11.63, 6) = 4 f_2.
        expected = max(4.0 * p.f[0], 1.0 * p.f[1])
        assert frontier(self.M, self.EPS, [9.0, 4.0, 1.0]) == pytest.approx(expected)

    def test_time_offset_added(self):
        base = frontier(self.M, self.EPS, [9.0, 4.0, 1.0], t=0.0)
        assert frontier(self.M, self.EPS, [9.0, 4.0, 1.0], t=2.5) == pytest.approx(
            base + 2.5
        )


class TestPhaseK3AndK4:
    def test_k3_two_exempt_machines(self):
        # m=3, eps=0.8 -> k=3: only the least loaded machine gates.
        p = threshold_parameters(0.8, 3)
        assert p.k == 3
        assert frontier(3, 0.8, [50.0, 40.0, 2.0]) == pytest.approx(2.0 * p.f[0])

    def test_k4_in_larger_system(self):
        # m=5, eps=0.9 -> last phase k=5: only rank-5 participates.
        p = threshold_parameters(0.9, 5)
        assert p.k == 5
        loads = [9.0, 7.0, 5.0, 3.0, 1.0]
        assert frontier(5, 0.9, loads) == pytest.approx(1.0 * p.f[0])

    def test_acceptance_decision_matches_frontier(self):
        # End-to-end: a job just below/above the computed frontier.
        from repro.model.job import Job
        from repro.model.machine import MachineState

        m, eps = 3, 0.2
        policy = ThresholdPolicy()
        policy.reset(m, eps)
        machines = [MachineState(i) for i in range(m)]
        machines[0].commit(Job(0.0, 4.0, 100.0, job_id=90), 0.0)
        machines[1].commit(Job(0.0, 1.0, 100.0, job_id=91), 0.0)
        d_lim = policy.threshold_at(0.0, [4.0, 1.0, 0.0])
        below = Job(0.0, 1.0, d_lim - 0.01, job_id=1)
        above = Job(0.0, 1.0, d_lim + 0.01, job_id=2)
        assert not policy.on_submission(below, 0.0, machines).accepted
        assert policy.on_submission(above, 0.0, machines).accepted
