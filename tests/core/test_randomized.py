"""Unit tests for the classify-and-select randomized algorithm (Corollary 1)."""

import numpy as np
import pytest

from repro.core.randomized import (
    ClassifyAndSelect,
    default_virtual_machines,
    expected_load_classify_select,
)
from repro.core.threshold import ThresholdPolicy
from repro.engine.simulator import simulate
from repro.model.instance import Instance
from repro.model.job import Job
from repro.workloads import random_instance


@pytest.fixture
def instance() -> Instance:
    return random_instance(40, 1, 0.05, seed=11)


class TestDefaults:
    def test_default_virtual_machines_scaling(self):
        assert default_virtual_machines(1.0) == 1
        assert default_virtual_machines(0.01) == round(np.log(100))
        assert default_virtual_machines(1e-6) == round(np.log(1e6))

    def test_default_clamps_at_one(self):
        assert default_virtual_machines(0.9) >= 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            default_virtual_machines(0.0)


class TestPolicyMechanics:
    def test_requires_single_machine(self):
        policy = ClassifyAndSelect()
        with pytest.raises(ValueError, match="single-machine"):
            policy.reset(2, 0.1)

    def test_fixed_selection_validated(self):
        policy = ClassifyAndSelect(virtual_machines=3, selected=5)
        with pytest.raises(ValueError, match="out of range"):
            policy.reset(1, 0.1)

    def test_runs_and_audits(self, instance):
        s = simulate(ClassifyAndSelect(rng=0), instance)
        s.audit()

    def test_deterministic_given_seed(self, instance):
        s1 = simulate(ClassifyAndSelect(rng=5), instance)
        s2 = simulate(ClassifyAndSelect(rng=5), instance)
        assert s1.accepted_load == s2.accepted_load

    def test_selection_changes_outcome_possible(self, instance):
        loads = {
            simulate(
                ClassifyAndSelect(virtual_machines=4, selected=i), instance
            ).accepted_load
            for i in range(4)
        }
        # Different virtual machines carry different jobs in general.
        assert len(loads) >= 2

    def test_describe(self, instance):
        policy = ClassifyAndSelect(virtual_machines=3, selected=1)
        simulate(policy, instance)
        d = policy.describe()
        assert d["virtual_machines"] == 3 and d["selected"] == 1


class TestExpectationIdentity:
    def test_realizations_match_virtual_machine_loads(self, instance):
        # Running with selected=i must accept exactly the virtual machine
        # i's jobs, so the average over i equals the virtual mean load.
        m_virtual = 4
        expected, loads = expected_load_classify_select(instance, m_virtual)
        realised = [
            simulate(
                ClassifyAndSelect(virtual_machines=m_virtual, selected=i), instance
            ).accepted_load
            for i in range(m_virtual)
        ]
        assert sorted(realised) == pytest.approx(sorted(loads.tolist()))
        assert expected == pytest.approx(float(np.mean(realised)))

    def test_expected_load_equals_virtual_total_over_m(self, instance):
        m_virtual = 5
        expected, loads = expected_load_classify_select(instance, m_virtual)
        virtual = simulate(ThresholdPolicy(), instance.with_machines(m_virtual))
        assert expected == pytest.approx(virtual.accepted_load / m_virtual)
        assert float(loads.sum()) == pytest.approx(virtual.accepted_load)

    def test_requires_single_machine_instance(self):
        inst = random_instance(10, 2, 0.1, seed=0)
        with pytest.raises(ValueError):
            expected_load_classify_select(inst)


class TestCommitmentSemantics:
    def test_accepted_jobs_keep_virtual_start_times(self):
        jobs = [Job(0.0, 1.0, 10.0), Job(0.0, 1.0, 10.0), Job(0.0, 1.0, 10.0)]
        inst = Instance(jobs, machines=1, epsilon=1.0)
        m_virtual = 2
        virtual = simulate(ThresholdPolicy(), inst.with_machines(m_virtual))
        for selected in range(m_virtual):
            s = simulate(
                ClassifyAndSelect(virtual_machines=m_virtual, selected=selected), inst
            )
            for jid, a in s.assignments.items():
                v = virtual.assignments[jid]
                assert v.machine == selected
                assert a.start == pytest.approx(v.start)
