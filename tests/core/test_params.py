"""Unit tests for the bound function c(eps, m) and its recursion.

These tests pin the paper's analytic facts: the anchor (Eq. 4), ratio
independence (Eq. 5), the f >= 2 constraint (Eq. 6), corner values
(Eq. 7), continuity across corners, Eq. (1)'s closed form for m = 2, and
the exact corner values 2/7 (m=2) and 0.09, 6/13 (m=3) that follow from
the construction.
"""

import math

import numpy as np
import pytest

from repro.core.params import (
    BoundFunction,
    asymptotic_bound,
    c_bound,
    clamp_epsilon,
    closed_form_last_phase,
    closed_form_m2,
    closed_form_second_last_phase,
    closed_form_third_last_phase,
    corner_values,
    forward_f_chain,
    forward_polynomial,
    phase_index,
    threshold_parameters,
)


class TestClampEpsilon:
    def test_passthrough_in_range(self):
        assert clamp_epsilon(0.3) == 0.3

    def test_clamps_above_one(self):
        assert clamp_epsilon(2.5) == 1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            clamp_epsilon(0.0)


class TestForwardChain:
    def test_anchor_for_m1(self):
        # m = 1, k = 1: f_1 = c - 1, and c = 2 + 1/eps gives f_1 = (1+eps)/eps.
        eps = 0.25
        c = 2.0 + 1.0 / eps
        f = forward_f_chain(c, m=1, k=1)
        assert f[-1] == pytest.approx((1 + eps) / eps)

    def test_strictly_increasing_in_q(self):
        f = forward_f_chain(8.0, m=4, k=1)
        assert np.all(np.diff(f) > 0)

    def test_monotone_in_c(self):
        f_lo = forward_f_chain(6.0, m=3, k=1)[-1]
        f_hi = forward_f_chain(7.0, m=3, k=1)[-1]
        assert f_hi > f_lo

    def test_bad_k_raises(self):
        with pytest.raises(ValueError):
            forward_f_chain(5.0, m=3, k=0)
        with pytest.raises(ValueError):
            forward_f_chain(5.0, m=3, k=4)

    def test_polynomial_matches_chain(self):
        for m, k in [(2, 1), (3, 1), (3, 2), (4, 2), (5, 3)]:
            poly = forward_polynomial(m, k)
            for c in [3.0, 5.5, 9.0]:
                assert poly(c) == pytest.approx(forward_f_chain(c, m, k)[-1], rel=1e-12)


class TestCornerValues:
    def test_m1_trivial(self):
        assert corner_values(1) == (0.0, 1.0)

    def test_m2_corner_is_two_sevenths(self):
        corners = corner_values(2)
        assert corners[1] == pytest.approx(2.0 / 7.0, abs=1e-12)

    def test_m3_corners_exact(self):
        corners = corner_values(3)
        assert corners[1] == pytest.approx(0.09, abs=1e-12)
        assert corners[2] == pytest.approx(6.0 / 13.0, abs=1e-12)

    def test_strictly_increasing(self):
        for m in [2, 3, 4, 6, 10]:
            corners = corner_values(m)
            assert all(a < b for a, b in zip(corners, corners[1:]))

    def test_endpoints(self):
        for m in [1, 2, 5]:
            corners = corner_values(m)
            assert corners[0] == 0.0 and corners[-1] == 1.0

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            corner_values(0)


class TestPhaseIndex:
    def test_m2_phases(self):
        assert phase_index(0.1, 2) == 1
        assert phase_index(2.0 / 7.0, 2) == 1  # corner belongs to left phase
        assert phase_index(0.3, 2) == 2
        assert phase_index(1.0, 2) == 2

    def test_m3_phases(self):
        assert phase_index(0.05, 3) == 1
        assert phase_index(0.2, 3) == 2
        assert phase_index(0.8, 3) == 3

    def test_epsilon_above_one_clamped(self):
        assert phase_index(3.0, 2) == 2


class TestCBoundClosedForms:
    @pytest.mark.parametrize("eps", [0.01, 0.05, 0.1, 0.2, 2 / 7, 0.4, 0.7, 1.0])
    def test_m2_matches_eq1(self, eps):
        assert c_bound(eps, 2) == pytest.approx(closed_form_m2(eps), rel=1e-10)

    @pytest.mark.parametrize("eps", [0.05, 0.1, 0.25, 0.5, 1.0])
    def test_m1_is_goldwasser(self, eps):
        assert c_bound(eps, 1) == pytest.approx(2.0 + 1.0 / eps, rel=1e-12)

    @pytest.mark.parametrize("m", [2, 3, 4, 5])
    def test_last_phase_closed_form(self, m):
        eps = 0.9  # inside (eps_{m-1,m}, 1] for all small m
        assert phase_index(eps, m) == m
        assert c_bound(eps, m) == pytest.approx(closed_form_last_phase(eps, m), rel=1e-10)

    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_second_last_phase_closed_form(self, m):
        corners = corner_values(m)
        eps = 0.5 * (corners[m - 2] + corners[m - 1])
        assert phase_index(eps, m) == m - 1
        assert c_bound(eps, m) == pytest.approx(
            closed_form_second_last_phase(eps, m), rel=1e-10
        )

    @pytest.mark.parametrize("m", [3, 4, 5])
    def test_third_last_phase_closed_form(self, m):
        corners = corner_values(m)
        eps = 0.5 * (corners[m - 3] + corners[m - 2])
        assert phase_index(eps, m) == m - 2
        assert c_bound(eps, m) == pytest.approx(
            closed_form_third_last_phase(eps, m), rel=1e-9
        )

    def test_eq1_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            closed_form_m2(0.0)
        with pytest.raises(ValueError):
            closed_form_m2(1.5)


class TestShape:
    def test_decreasing_in_epsilon(self):
        for m in [1, 2, 3, 4]:
            grid = np.geomspace(0.01, 1.0, 40)
            vals = BoundFunction(m).series(grid)
            assert np.all(np.diff(vals) < 0)

    def test_decreasing_in_m(self):
        for eps in [0.05, 0.2, 0.7]:
            vals = [c_bound(eps, m) for m in [1, 2, 3, 4, 6]]
            assert all(a > b for a, b in zip(vals, vals[1:]))

    def test_continuity_at_corners(self):
        for m in [2, 3, 4]:
            for corner in corner_values(m)[1:-1]:
                left = c_bound(corner - 1e-9, m)
                right = c_bound(corner + 1e-9, m)
                assert left == pytest.approx(right, abs=1e-5)

    def test_corner_ratio_value(self):
        # At eps_{k,m} the ratio equals (2m+1)/k (f_k = 2 there).
        for m in [2, 3, 4]:
            corners = corner_values(m)
            for k in range(1, m):
                assert c_bound(corners[k], m) == pytest.approx(
                    (2 * m + 1) / k, rel=1e-9
                )

    def test_growth_rate_eps_pow_inverse_m(self):
        # Dominant phase: c ~ m * eps^{-1/m}; check the log-log slope.
        m = 3
        eps = np.array([1e-6, 1e-7])
        vals = np.array([c_bound(float(e), m) for e in eps])
        slope = np.log(vals[1] / vals[0]) / np.log(eps[1] / eps[0])
        assert slope == pytest.approx(-1.0 / m, abs=0.02)


class TestThresholdParameters:
    @pytest.mark.parametrize(
        "eps,m", [(0.05, 1), (0.3, 2), (0.05, 3), (0.2, 3), (0.8, 3), (0.1, 5)]
    )
    def test_verify_identities(self, eps, m):
        threshold_parameters(eps, m).verify()

    def test_factor_for_rank(self):
        p = threshold_parameters(0.2, 3)  # k = 2
        assert p.factor_for_rank(2) == pytest.approx(p.f[0])
        assert p.factor_for_rank(3) == pytest.approx((1 + 0.2) / 0.2)
        with pytest.raises(ValueError):
            p.factor_for_rank(1)
        with pytest.raises(ValueError):
            p.factor_for_rank(4)

    def test_anchor(self):
        for eps in [0.1, 0.5, 1.0]:
            p = threshold_parameters(eps, 4)
            assert p.f[-1] == pytest.approx((1 + eps) / eps)

    def test_c_equals_mfk_plus_1_over_k(self):
        p = threshold_parameters(0.2, 3)
        assert p.c == pytest.approx((p.m * p.f[0] + 1) / p.k)


class TestAsymptotics:
    def test_asymptotic_bound_value(self):
        assert asymptotic_bound(0.01) == pytest.approx(math.log(100))

    def test_asymptotic_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            asymptotic_bound(0.0)

    def test_fixed_eps_limit_is_2_plus_log(self):
        # Measured fact (documented in EXPERIMENTS.md): for fixed eps the
        # m -> infinity limit of c(eps, m) is 2 + ln(1/eps); Proposition 1's
        # ln(1/eps) appears in the joint limit eps -> 0.
        eps = 0.01
        target = 2.0 + math.log(1.0 / eps)
        diffs = [c_bound(eps, m) - target for m in (64, 128, 256)]
        assert all(d > 0 for d in diffs)
        assert diffs[2] < diffs[1] < diffs[0]
        assert diffs[2] < 0.1

    def test_joint_limit_ratio_to_log(self):
        # c / ln(1/eps) -> 1 as eps -> 0 with m large.
        r1 = c_bound(1e-4, 256) / math.log(1e4)
        r2 = c_bound(1e-8, 256) / math.log(1e8)
        assert r2 < r1
        assert r2 < 1.25


class TestBoundFunctionObject:
    def test_transition_points_match_corners(self):
        bf = BoundFunction(3)
        pts = bf.transition_points()
        assert len(pts) == 2
        assert pts[0][0] == pytest.approx(0.09, abs=1e-9)
        assert pts[0][1] == pytest.approx(7.0)
        assert pts[1][1] == pytest.approx(3.5)

    def test_series_matches_scalar(self):
        bf = BoundFunction(2)
        grid = [0.1, 0.5]
        series = bf.series(grid)
        assert series[0] == pytest.approx(bf.value(0.1))
        assert series[1] == pytest.approx(bf.value(0.5))

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            BoundFunction(0)
