"""Golden-value regression tests for the bound function.

A frozen table of c(eps, m) values computed by this implementation (and
double-checked against the closed forms where available).  Any future
change to the solver that shifts these numbers by more than 1e-9 fails
loudly — protecting every downstream benchmark's reference column.
"""

import pytest

from repro.core.params import c_bound, threshold_parameters

#: (epsilon, m) -> c(epsilon, m), frozen.
GOLDEN_C = {
    (0.01, 1): 102.0,
    (0.10, 1): 12.0,
    (0.50, 1): 4.0,
    (1.00, 1): 3.0,
    (0.01, 2): 20.655644370746373,
    (0.05, 2): 9.787087810503355,
    (0.10, 2): 7.300735254367721,
    (2.0 / 7.0, 2): 5.0,
    (0.50, 2): 3.5,
    (1.00, 2): 2.5,
    (0.01, 3): 13.691314461247497,
    (0.05, 3): 8.25948284072276,
    (0.09, 3): 7.0,
    (0.20, 3): 4.861902647381825,
    (6.0 / 13.0, 3): 3.5,
    (0.80, 3): 2.5833333333333335,
    (0.05, 4): 7.413204105623378,
    (0.10, 4): 5.8190374166771095,
    (0.30, 4): 3.9132502180427244,
    (1.00, 4): 2.25,
}

#: (epsilon, m) -> phase index k, frozen.
GOLDEN_K = {
    (0.01, 2): 1,
    (0.50, 2): 2,
    (0.05, 3): 1,
    (0.20, 3): 2,
    (0.80, 3): 3,
    (0.05, 4): 2,
    (0.10, 4): 2,
    (0.30, 4): 3,
    (1.00, 4): 4,
}


class TestGoldenBoundValues:
    @pytest.mark.parametrize("key", sorted(GOLDEN_C, key=repr))
    def test_c_bound_frozen(self, key):
        eps, m = key
        assert c_bound(eps, m) == pytest.approx(GOLDEN_C[key], abs=1e-9)

    @pytest.mark.parametrize("key", sorted(GOLDEN_K, key=repr))
    def test_phase_index_frozen(self, key):
        eps, m = key
        assert threshold_parameters(eps, m).k == GOLDEN_K[key]

    def test_golden_set_is_consistent_with_closed_forms(self):
        # Spot-check frozen entries against the paper's closed forms.
        assert GOLDEN_C[(0.10, 1)] == pytest.approx(2 + 1 / 0.1)
        assert GOLDEN_C[(0.50, 2)] == pytest.approx(1.5 + 1 / 0.5)
        assert GOLDEN_C[(2.0 / 7.0, 2)] == pytest.approx(5.0)
        assert GOLDEN_C[(0.09, 3)] == pytest.approx(7.0)


class TestGoldenThresholdLadders:
    def test_m3_eps02_ladder(self):
        p = threshold_parameters(0.2, 3)
        assert p.k == 2
        assert p.f[0] == pytest.approx(2.9079351, abs=1e-6)
        assert p.f[1] == pytest.approx(6.0)

    def test_m4_eps005_ladder(self):
        p = threshold_parameters(0.05, 4)
        assert p.k == 2
        assert list(p.f) == pytest.approx(
            [3.456602052811689, 8.009425158758297, 21.0], abs=1e-9
        )
