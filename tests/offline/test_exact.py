"""Unit tests for the exact branch-and-bound solver."""

import pytest

from repro.model.instance import Instance
from repro.model.job import Job
from repro.offline.exact import EXACT_JOB_LIMIT, exact_optimum


def _inst(jobs, m=1, eps=0.5, validate=False):
    return Instance(jobs, machines=m, epsilon=eps, validate=validate)


class TestSmallCases:
    def test_empty(self):
        r = exact_optimum(_inst([]))
        assert r.value == 0.0
        r.schedule.audit()

    def test_single_job(self):
        r = exact_optimum(_inst([Job(0, 2, 4)]))
        assert r.value == 2.0

    def test_two_conflicting_jobs_takes_bigger(self):
        jobs = [Job(0, 2, 2.2), Job(0, 3, 3.3)]
        r = exact_optimum(_inst(jobs))
        assert r.value == pytest.approx(3.0)
        assert r.schedule.is_accepted(1)

    def test_both_fit_with_sequencing(self):
        jobs = [Job(0, 2, 6.0), Job(0, 3, 3.3)]
        # EDD order: job 1 first [0,3], job 0 [3,5] <= 6.
        r = exact_optimum(_inst(jobs))
        assert r.value == pytest.approx(5.0)

    def test_release_inversion_required(self):
        # Optimal runs the later-released short job first — the dispatch
        # DFS must consider non-release order.
        jobs = [Job(0.0, 10.0, 100.0), Job(1.0, 1.0, 2.0)]
        r = exact_optimum(_inst(jobs))
        assert r.value == pytest.approx(11.0)
        assert r.schedule.assignments[1].start == pytest.approx(1.0)
        assert r.schedule.assignments[0].start >= 2.0

    def test_two_machines_parallel(self):
        jobs = [Job(0, 2, 2.2), Job(0, 2, 2.2), Job(0, 2, 2.2)]
        r = exact_optimum(_inst(jobs, m=2))
        assert r.value == pytest.approx(4.0)

    def test_idle_waiting_beats_greedy(self):
        # Rejecting an early job to keep the machine free for a bigger one:
        # the big job must start by 0.6, which the unit job would block.
        jobs = [Job(0.0, 1.0, 1.1), Job(0.5, 10.0, 10.6)]
        r = exact_optimum(_inst(jobs))
        assert r.value == pytest.approx(10.0)
        assert not r.schedule.is_accepted(0)


class TestGuards:
    def test_job_limit(self):
        jobs = [Job(float(i), 1.0, float(i) + 5.0) for i in range(EXACT_JOB_LIMIT + 1)]
        with pytest.raises(ValueError, match="limited"):
            exact_optimum(_inst(jobs))

    def test_custom_limit(self):
        jobs = [Job(0.0, 1.0, 5.0), Job(0.0, 1.0, 5.0)]
        with pytest.raises(ValueError):
            exact_optimum(_inst(jobs), job_limit=1)


class TestAgainstBruteForce:
    def _brute_force_single_machine(self, jobs):
        """Exhaustive subset x permutation search (tiny n only)."""
        import itertools

        best = 0.0
        n = len(jobs)
        for mask in range(1 << n):
            subset = [jobs[i] for i in range(n) if mask >> i & 1]
            for order in itertools.permutations(subset):
                t = 0.0
                ok = True
                for job in order:
                    start = max(t, job.release)
                    if start + job.processing > job.deadline + 1e-9:
                        ok = False
                        break
                    t = start + job.processing
                if ok:
                    best = max(best, sum(j.processing for j in subset))
        return best

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        jobs = []
        t = 0.0
        for i in range(6):
            t += float(rng.exponential(0.6))
            p = float(rng.uniform(0.2, 2.0))
            d = t + p * (1.0 + float(rng.exponential(0.8)))
            jobs.append(Job(t, p, d, job_id=i))
        inst = _inst(jobs)
        r = exact_optimum(inst)
        assert r.value == pytest.approx(self._brute_force_single_machine(jobs), abs=1e-9)
        r.schedule.audit()

    def test_reconstruction_matches_value(self):
        jobs = [Job(0, 1, 2), Job(0, 2, 3), Job(0.5, 1, 4), Job(1, 2, 6)]
        r = exact_optimum(_inst(jobs, m=2))
        assert r.schedule.accepted_load == pytest.approx(r.value)
        r.schedule.audit()
