"""Unit tests for the optimum bracket."""

import pytest

from repro.offline.bracket import opt_bracket
from repro.offline.exact import exact_optimum
from repro.workloads import random_instance


class TestBracket:
    def test_small_instance_is_exact(self):
        inst = random_instance(8, 2, 0.2, seed=3)
        b = opt_bracket(inst)
        assert b.exact
        assert b.lower == b.upper == pytest.approx(exact_optimum(inst).value)
        assert b.gap == 0.0
        assert b.relative_gap == 0.0

    def test_large_instance_uses_bounds(self):
        inst = random_instance(60, 2, 0.2, seed=3)
        b = opt_bracket(inst)
        assert not b.exact
        assert b.lower <= b.upper

    def test_force_bounds(self):
        inst = random_instance(8, 2, 0.2, seed=3)
        b = opt_bracket(inst, force_bounds=True)
        assert not b.exact
        exact = exact_optimum(inst).value
        assert b.lower - 1e-7 <= exact <= b.upper + 1e-7

    def test_midpoint_between_ends(self):
        inst = random_instance(40, 2, 0.2, seed=5)
        b = opt_bracket(inst)
        assert b.lower - 1e-12 <= b.midpoint <= b.upper + 1e-12

    def test_custom_exact_limit(self):
        inst = random_instance(10, 2, 0.2, seed=3)
        b = opt_bracket(inst, exact_limit=5)
        assert not b.exact

    def test_relative_gap_is_a_property(self):
        inst = random_instance(40, 2, 0.2, seed=5)
        b = opt_bracket(inst)
        gap = b.relative_gap
        assert isinstance(gap, float)
        assert gap == pytest.approx(b.gap / b.upper)

    def test_relative_gap_call_form_is_deprecated(self):
        b = opt_bracket(random_instance(8, 2, 0.2, seed=3))
        with pytest.warns(DeprecationWarning, match="drop the call parentheses"):
            called = b.relative_gap()
        assert called == b.relative_gap
