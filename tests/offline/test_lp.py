"""Tests for the LP formulation of the Horn relaxation."""

import pytest

from repro.model.instance import Instance
from repro.model.job import Job
from repro.offline.bounds import flow_upper_bound
from repro.offline.exact import exact_optimum
from repro.offline.lp import lp_upper_bound
from repro.workloads import random_instance


def _inst(jobs, m=1, eps=0.5):
    return Instance(jobs, machines=m, epsilon=eps, validate=False)


class TestLpUpperBound:
    def test_empty(self):
        assert lp_upper_bound(_inst([])) == 0.0

    def test_single_job(self):
        assert lp_upper_bound(_inst([Job(0, 2, 4)])) == pytest.approx(2.0)

    def test_window_cap(self):
        jobs = [Job(0, 1, 1.2), Job(0, 1, 1.2)]
        assert lp_upper_bound(_inst(jobs)) == pytest.approx(1.2)

    def test_self_parallelism_cap(self):
        jobs = [Job(0, 3, 3.0)] * 3
        assert lp_upper_bound(_inst(jobs, m=2)) == pytest.approx(6.0)

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_flow_bound(self, seed):
        inst = random_instance(20, 2, 0.2, seed=seed)
        assert lp_upper_bound(inst) == pytest.approx(flow_upper_bound(inst), abs=1e-6)

    @pytest.mark.parametrize("seed", range(4))
    def test_dominates_exact(self, seed):
        inst = random_instance(9, 2, 0.25, seed=seed)
        assert lp_upper_bound(inst) >= exact_optimum(inst).value - 1e-7

    def test_multi_machine_scaling(self):
        jobs = [Job(0, 1, 1.2)] * 4
        one = lp_upper_bound(_inst(jobs, m=1))
        two = lp_upper_bound(_inst(jobs, m=2))
        assert two == pytest.approx(2 * one)
