"""Unit tests for the common-release single-machine DP."""

import pytest

from repro.model.instance import Instance
from repro.model.job import Job
from repro.offline.dp import (
    single_machine_common_release_opt,
    single_machine_common_release_opt_subset,
)
from repro.offline.exact import exact_optimum


class TestDP:
    def test_empty(self):
        assert single_machine_common_release_opt([]) == 0.0

    def test_single_job(self):
        assert single_machine_common_release_opt([Job(0, 2, 5)]) == 2.0

    def test_edd_packing(self):
        jobs = [Job(0, 2, 2), Job(0, 2, 4), Job(0, 2, 6)]
        assert single_machine_common_release_opt(jobs) == pytest.approx(6.0)

    def test_knapsack_choice(self):
        # Either the 3-unit job or the two 2-unit jobs fit by deadline 4.
        jobs = [Job(0, 3, 4), Job(0, 2, 4), Job(0, 2, 4)]
        assert single_machine_common_release_opt(jobs) == pytest.approx(4.0)

    def test_nonzero_common_release(self):
        jobs = [Job(5, 1, 7), Job(5, 2, 8)]
        assert single_machine_common_release_opt(jobs) == pytest.approx(3.0)

    def test_rejects_mixed_releases(self):
        with pytest.raises(ValueError, match="common-release"):
            single_machine_common_release_opt([Job(0, 1, 3), Job(1, 1, 3)])

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_exact_solver(self, seed):
        import numpy as np

        rng = np.random.default_rng(100 + seed)
        jobs = []
        for i in range(7):
            p = float(rng.uniform(0.3, 2.0))
            d = float(rng.uniform(1.0, 6.0))
            if d >= p:
                jobs.append(Job(0.0, p, d, job_id=i))
        inst = Instance(jobs, machines=1, epsilon=0.01, validate=False)
        assert single_machine_common_release_opt(jobs) == pytest.approx(
            exact_optimum(inst).value, abs=1e-6
        )


class TestSubsetVariant:
    def test_returns_achieving_subset(self):
        jobs = [
            Job(0, 3, 4, job_id=0),
            Job(0, 2, 4, job_id=1),
            Job(0, 2, 4, job_id=2),
        ]
        value, subset = single_machine_common_release_opt_subset(jobs)
        assert value == pytest.approx(4.0)
        chosen = [j for j in jobs if j.job_id in subset]
        assert sum(j.processing for j in chosen) == pytest.approx(value)
        # The subset must itself be EDD-feasible.
        t = 0.0
        for j in sorted(chosen, key=lambda x: x.deadline):
            t += j.processing
            assert t <= j.deadline + 1e-9

    def test_empty(self):
        value, subset = single_machine_common_release_opt_subset([])
        assert value == 0.0 and subset == []

    def test_rejects_mixed_releases(self):
        with pytest.raises(ValueError):
            single_machine_common_release_opt_subset([Job(0, 1, 3), Job(1, 1, 3)])
