"""Unit tests for the flow upper bound and friends."""

import pytest

from repro.model.instance import Instance
from repro.model.job import Job
from repro.offline.bounds import (
    flow_upper_bound,
    machine_window_upper_bound,
    opt_upper_bound,
)
from repro.offline.exact import exact_optimum
from repro.workloads import random_instance


def _inst(jobs, m=1, eps=0.5):
    return Instance(jobs, machines=m, epsilon=eps, validate=False)


class TestFlowUpperBound:
    def test_empty(self):
        assert flow_upper_bound(_inst([])) == 0.0

    def test_single_job_full_value(self):
        assert flow_upper_bound(_inst([Job(0, 2, 4)])) == pytest.approx(2.0)

    def test_caps_at_window_capacity(self):
        # Two unit jobs, same window [0, 1.2], one machine: bound 1.2 < 2.
        jobs = [Job(0, 1, 1.2), Job(0, 1, 1.2)]
        assert flow_upper_bound(_inst(jobs)) == pytest.approx(1.2)

    def test_scales_with_machines(self):
        jobs = [Job(0, 1, 1.2), Job(0, 1, 1.2)]
        assert flow_upper_bound(_inst(jobs, m=2)) == pytest.approx(2.0)

    def test_respects_self_parallelism_cap(self):
        # A job cannot run on two machines at once: three 3-unit jobs with
        # window 3 on two machines are capped at 2 * 3 = 6, not 9.
        jobs = [Job(0, 3, 3.0), Job(0, 3, 3.0), Job(0, 3, 3.0)]
        assert flow_upper_bound(_inst(jobs, m=2)) == pytest.approx(6.0)

    @pytest.mark.parametrize("seed", range(6))
    def test_dominates_exact(self, seed):
        inst = random_instance(9, 2, 0.2, seed=seed)
        assert flow_upper_bound(inst) >= exact_optimum(inst).value - 1e-7


class TestOtherBounds:
    def test_window_bound(self):
        jobs = [Job(1, 1, 5), Job(2, 1, 7)]
        assert machine_window_upper_bound(_inst(jobs, m=3)) == pytest.approx(18.0)

    def test_window_bound_empty(self):
        assert machine_window_upper_bound(_inst([])) == 0.0

    def test_opt_upper_bound_takes_min(self):
        jobs = [Job(0, 1, 100.0)]
        # total load (1) < flow and window bounds.
        assert opt_upper_bound(_inst(jobs)) == pytest.approx(1.0)
