"""Unit tests for the offline packing heuristics."""

import pytest

from repro.model.instance import Instance
from repro.model.job import Job
from repro.model.machine import MachineState
from repro.offline.exact import exact_optimum
from repro.offline.heuristics import (
    ORDERINGS,
    best_offline_schedule,
    earliest_feasible_start,
    opt_lower_bound,
)
from repro.workloads import random_instance


def _inst(jobs, m=1, eps=0.5):
    return Instance(jobs, machines=m, epsilon=eps, validate=False)


class TestEarliestFeasibleStart:
    def test_empty_machine(self):
        assert earliest_feasible_start(MachineState(0), Job(1, 2, 10, job_id=0)) == 1.0

    def test_uses_gap(self):
        ms = MachineState(0)
        ms.commit(Job(0, 2, 50, job_id=9), 0.0)
        ms.commit(Job(0, 2, 50, job_id=8), 5.0)
        # Gap [2, 5) fits a 2-unit job.
        assert earliest_feasible_start(ms, Job(0, 2, 10, job_id=0)) == pytest.approx(2.0)

    def test_no_gap_returns_none(self):
        ms = MachineState(0)
        ms.commit(Job(0, 3, 50, job_id=9), 0.0)
        assert earliest_feasible_start(ms, Job(0, 2, 4, job_id=0)) is None

    def test_deadline_blocks_late_gap(self):
        ms = MachineState(0)
        ms.commit(Job(0, 5, 50, job_id=9), 0.0)
        assert earliest_feasible_start(ms, Job(0, 1, 5.5, job_id=0)) is None


class TestBestOfflineSchedule:
    def test_schedules_everything_when_easy(self):
        jobs = [Job(0, 1, 10), Job(1, 1, 10), Job(2, 1, 10)]
        s = best_offline_schedule(_inst(jobs, m=2))
        assert s.accepted_count == 3

    def test_gap_filling_beats_online_greedy(self):
        # A later-released short job fits before a delayed long one.
        jobs = [Job(0.0, 10.0, 100.0), Job(1.0, 1.0, 2.0)]
        s = best_offline_schedule(_inst(jobs))
        assert s.accepted_count == 2

    def test_audited(self):
        inst = random_instance(40, 3, 0.2, seed=8)
        s = best_offline_schedule(inst)
        s.audit()

    def test_ordering_recorded(self):
        inst = random_instance(10, 2, 0.3, seed=1)
        s = best_offline_schedule(inst)
        assert s.meta["ordering"] in ORDERINGS

    @pytest.mark.parametrize("seed", range(6))
    def test_lower_bounds_exact(self, seed):
        inst = random_instance(9, 2, 0.2, seed=seed)
        assert opt_lower_bound(inst) <= exact_optimum(inst).value + 1e-7

    def test_orderings_cover_known_families(self):
        assert {"edd", "long-first", "release"} <= set(ORDERINGS)
