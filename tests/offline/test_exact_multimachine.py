"""Exhaustive cross-check of the exact solver on two machines.

The dispatch-sequence DFS claims exactness; here it is verified against a
completely independent brute force (assignment x per-machine permutation
enumeration) on tiny random instances.
"""

import itertools

import numpy as np
import pytest

from repro.model.instance import Instance
from repro.model.job import Job
from repro.offline.exact import exact_optimum


def _feasible_single_machine(sequence) -> bool:
    t = 0.0
    for job in sequence:
        start = max(t, job.release)
        if start + job.processing > job.deadline + 1e-9:
            return False
        t = start + job.processing
    return True


def _brute_force_two_machines(jobs) -> float:
    """Max load over all subsets, 2-partitions and orderings."""
    best = 0.0
    n = len(jobs)
    for mask in range(1 << n):
        subset = [jobs[i] for i in range(n) if mask >> i & 1]
        load = sum(j.processing for j in subset)
        if load <= best:
            continue
        k = len(subset)
        for split in range(1 << k):
            m0 = [subset[i] for i in range(k) if split >> i & 1]
            m1 = [subset[i] for i in range(k) if not split >> i & 1]
            ok0 = any(
                _feasible_single_machine(perm) for perm in itertools.permutations(m0)
            ) if m0 else True
            if not ok0:
                continue
            ok1 = any(
                _feasible_single_machine(perm) for perm in itertools.permutations(m1)
            ) if m1 else True
            if ok1:
                best = load
                break
    return best


@pytest.mark.parametrize("seed", range(10))
def test_exact_matches_brute_force_m2(seed):
    rng = np.random.default_rng(500 + seed)
    jobs = []
    t = 0.0
    for i in range(5):
        t += float(rng.exponential(0.5))
        p = float(rng.uniform(0.3, 2.0))
        d = t + p * (1.0 + float(rng.exponential(0.6)))
        jobs.append(Job(t, p, d, job_id=i))
    inst = Instance(jobs, machines=2, epsilon=0.01, validate=False)
    result = exact_optimum(inst)
    assert result.value == pytest.approx(_brute_force_two_machines(jobs), abs=1e-9)
    result.schedule.audit()


def test_exact_uses_second_machine_when_needed():
    jobs = [Job(0, 2, 2.2, job_id=0), Job(0, 2, 2.2, job_id=1)]
    inst = Instance(jobs, machines=2, epsilon=0.1)
    result = exact_optimum(inst)
    assert result.value == pytest.approx(4.0)
    machines = {a.machine for a in result.schedule.assignments.values()}
    assert len(machines) == 2
