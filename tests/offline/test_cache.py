"""Tests for the content-addressed offline bracket cache."""

from __future__ import annotations

import json
import multiprocessing
import pickle
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.offline.cache as cache_mod
from repro.model.instance import Instance
from repro.model.job import Job
from repro.offline.bracket import opt_bracket
from repro.offline.cache import (
    BracketCache,
    BracketCacheWarning,
    MEMORY_ONLY,
    bracket_key,
    cached_opt_bracket,
    instance_fingerprint,
)
from repro.testing.chaos import corrupt_file
from repro.workloads import random_instance


def _instance(seed=3, n=8, m=2, eps=0.2):
    return random_instance(n, m, eps, seed=seed)


# ----------------------------------------------------------------------
# Fingerprint / key semantics
# ----------------------------------------------------------------------


class TestFingerprint:
    def test_job_order_is_irrelevant(self):
        # valid instances keep releases non-decreasing, so permutations
        # arise among simultaneous releases (submission-order ties)
        jobs = [Job(0.0, 1.0, 3.0), Job(0.0, 2.0, 5.0), Job(0.0, 3.0, 7.0)]
        inst = Instance(jobs, machines=2, epsilon=0.5)
        permuted = Instance(list(reversed(jobs)), machines=2, epsilon=0.5)
        assert instance_fingerprint(inst) == instance_fingerprint(permuted)

    def test_name_meta_epsilon_are_irrelevant(self):
        inst = _instance()
        relabeled = Instance(
            inst.jobs,
            machines=inst.machines,
            epsilon=min(1.0, inst.epsilon / 2),
            name="other",
            meta={"origin": "elsewhere"},
        )
        assert instance_fingerprint(inst) == instance_fingerprint(relabeled)

    def test_content_changes_the_fingerprint(self):
        inst = _instance()
        more_machines = Instance(
            inst.jobs, machines=inst.machines + 1, epsilon=inst.epsilon
        )
        assert instance_fingerprint(inst) != instance_fingerprint(more_machines)
        jobs = list(inst.jobs)
        jobs[0] = Job(jobs[0].release, jobs[0].processing * 2, jobs[0].deadline * 2)
        perturbed = Instance(jobs, machines=inst.machines, epsilon=inst.epsilon)
        assert instance_fingerprint(inst) != instance_fingerprint(perturbed)

    def test_key_depends_on_solver_inputs(self):
        inst = _instance()
        base = bracket_key(inst)
        assert bracket_key(inst, exact_limit=5) != base
        assert bracket_key(inst, force_bounds=True) != base

    def test_key_depends_on_cache_version(self, monkeypatch):
        inst = _instance()
        base = bracket_key(inst)
        monkeypatch.setattr(cache_mod, "CACHE_VERSION", cache_mod.CACHE_VERSION + 1)
        assert bracket_key(inst) != base


# ----------------------------------------------------------------------
# Basic two-tier behaviour
# ----------------------------------------------------------------------


class TestBracketCache:
    def test_miss_then_memory_hit(self, tmp_path):
        cache = BracketCache(tmp_path)
        inst = _instance()
        first = cache.bracket(inst)
        second = cache.bracket(inst)
        assert first == second == opt_bracket(inst)
        assert cache.stats.misses == 1
        assert cache.stats.memory_hits == 1
        assert cache.stats.writes == 1

    def test_disk_hit_across_cache_objects(self, tmp_path):
        inst = _instance()
        BracketCache(tmp_path).bracket(inst)
        fresh = BracketCache(tmp_path)
        assert fresh.bracket(inst) == opt_bracket(inst)
        assert fresh.stats.disk_hits == 1
        assert fresh.stats.misses == 0

    def test_sharded_layout(self, tmp_path):
        cache = BracketCache(tmp_path)
        inst = _instance()
        cache.bracket(inst)
        key = bracket_key(inst)
        path = cache.entry_path(key)
        assert path.is_file()
        assert path.parent.name == key[:2]
        record = json.loads(path.read_text())
        assert record["key"] == key

    def test_permuted_instance_hits(self, tmp_path):
        cache = BracketCache(tmp_path)
        jobs = [Job(0.0, 1.0, 3.0), Job(0.0, 2.0, 5.0), Job(1.0, 1.5, 5.0)]
        inst = Instance(jobs, machines=2, epsilon=0.5)
        cache.bracket(inst)
        permuted = Instance(
            [jobs[1], jobs[0], jobs[2]], machines=2, epsilon=0.5, name="permuted"
        )
        assert cache.bracket(permuted) == opt_bracket(inst)
        assert cache.stats.hits == 1

    def test_memory_only_mode(self):
        cache = BracketCache(MEMORY_ONLY)
        inst = _instance()
        cache.bracket(inst)
        cache.bracket(inst)
        assert cache.memory_only and cache.cache_dir is None
        assert cache.stats.memory_hits == 1 and cache.stats.writes == 0
        with pytest.raises(ValueError):
            cache.entry_path(bracket_key(inst))

    def test_clear_and_scan(self, tmp_path):
        cache = BracketCache(tmp_path)
        for seed in range(3):
            cache.bracket(_instance(seed=seed))
        report = cache.scan()
        assert report.entries == 3
        assert report.total_bytes > 0
        assert 1 <= report.shards <= 3
        assert cache.clear() == 3
        assert cache.scan().entries == 0
        assert not any(p.is_dir() and len(p.name) == 2 for p in tmp_path.iterdir())
        # cleared means recompute, not a stale hit
        cache.bracket(_instance(seed=0))
        assert cache.stats.misses >= 4

    def test_lru_eviction(self):
        cache = BracketCache(MEMORY_ONLY, max_memory_entries=2)
        instances = [_instance(seed=s, n=4) for s in range(3)]
        for inst in instances:
            cache.bracket(inst)
        assert cache.stats.evictions == 1
        # the evicted (oldest) entry is gone from the memory tier
        assert cache.get(instances[0]) is None
        assert cache.get(instances[2]) is not None

    def test_evicted_entry_survives_on_disk(self, tmp_path):
        cache = BracketCache(tmp_path, max_memory_entries=1)
        a, b = _instance(seed=1, n=4), _instance(seed=2, n=4)
        cache.bracket(a)
        cache.bracket(b)  # evicts a from memory, not from disk
        assert cache.stats.evictions == 1
        assert cache.bracket(a) == opt_bracket(a)
        assert cache.stats.disk_hits == 1

    def test_pickle_ships_configuration_only(self, tmp_path):
        cache = BracketCache(tmp_path, max_memory_entries=7)
        inst = _instance()
        cache.bracket(inst)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.cache_dir == cache.cache_dir
        assert clone.max_memory_entries == 7
        assert clone.stats.lookups == 0  # fresh stats
        clone.bracket(inst)  # shared disk tier
        assert clone.stats.disk_hits == 1

    def test_cached_opt_bracket_passthrough(self):
        inst = _instance()
        assert cached_opt_bracket(inst) == opt_bracket(inst)
        assert cached_opt_bracket(inst, force_bounds=True) == opt_bracket(
            inst, force_bounds=True
        )


# ----------------------------------------------------------------------
# Property: a cached bracket is bit-identical to a fresh solve
# ----------------------------------------------------------------------


@st.composite
def small_instances(draw):
    eps = draw(st.floats(min_value=0.05, max_value=1.0))
    m = draw(st.integers(min_value=1, max_value=3))
    n = draw(st.integers(min_value=1, max_value=8))
    jobs = []
    t = 0.0
    for _ in range(n):
        # frequent zero-increments create simultaneous releases, whose
        # submission order is the only freedom valid instances have
        t += draw(st.sampled_from((0.0, 0.0, 0.5, 1.25)))
        p = draw(st.floats(min_value=0.05, max_value=4.0))
        extra = draw(st.floats(min_value=0.0, max_value=3.0))
        jobs.append(Job(t, p, t + (1.0 + eps + extra) * p))
    return Instance(jobs, machines=m, epsilon=eps)


@settings(max_examples=25, deadline=None)
@given(inst=small_instances(), perm_seed=st.integers(min_value=0, max_value=2**31))
def test_cached_bracket_bit_identical(inst, perm_seed):
    """Disk round-trip + tie permutation never changes a single bit."""
    import random

    fresh = opt_bracket(inst)
    with tempfile.TemporaryDirectory() as tmp:
        BracketCache(tmp).bracket(inst)
        jobs = list(inst.jobs)
        random.Random(perm_seed).shuffle(jobs)
        jobs.sort(key=lambda j: j.release)  # stable: ties keep shuffled order
        permuted = Instance(
            jobs, machines=inst.machines, epsilon=inst.epsilon, name="permuted"
        )
        reader = BracketCache(tmp)
        cached = reader.bracket(permuted)
        assert reader.stats.disk_hits == 1 and reader.stats.misses == 0
    assert cached.lower == fresh.lower
    assert cached.upper == fresh.upper
    assert cached.exact == fresh.exact


# ----------------------------------------------------------------------
# Robustness: corruption, version bumps, unusable directories
# ----------------------------------------------------------------------


class TestRobustness:
    @pytest.mark.parametrize("damage_seed", [0, 1, 2, 3, 4, 5])
    def test_corrupt_entry_is_a_counted_miss(self, tmp_path, damage_seed):
        cache = BracketCache(tmp_path)
        inst = _instance()
        expected = cache.bracket(inst)
        corrupt_file(cache.entry_path(bracket_key(inst)), seed=damage_seed)
        reader = BracketCache(tmp_path)
        with pytest.warns(BracketCacheWarning):
            recovered = reader.bracket(inst)
        assert recovered == expected
        assert reader.stats.corrupt == 1
        assert reader.stats.misses == 1
        assert reader.stats.writes == 1  # rewritten after the recompute
        # the rewritten entry is healthy again
        healthy = BracketCache(tmp_path)
        assert healthy.bracket(inst) == expected
        assert healthy.stats.disk_hits == 1

    def test_all_damage_modes_covered(self):
        # the seeds used above exercise every corrupt_file damage mode
        with tempfile.TemporaryDirectory() as tmp:
            seen = set()
            for seed in range(6):
                path = f"{tmp}/victim.json"
                with open(path, "w") as fh:
                    fh.write('{"version": 1}')
                seen.add(corrupt_file(path, seed=seed))
        assert seen == {"truncate", "garbage", "wrong-shape"}

    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        cache = BracketCache(tmp_path)
        inst = _instance()
        cache.bracket(inst)
        monkeypatch.setattr(cache_mod, "CACHE_VERSION", cache_mod.CACHE_VERSION + 1)
        bumped = BracketCache(tmp_path)
        assert bumped.bracket(inst) == opt_bracket(inst)
        # the old entry is simply unaddressed: a clean miss, no warning
        assert bumped.stats.misses == 1
        assert bumped.stats.corrupt == 0

    def test_non_finite_entry_rejected(self, tmp_path):
        cache = BracketCache(tmp_path)
        inst = _instance()
        expected = cache.bracket(inst)
        path = cache.entry_path(bracket_key(inst))
        record = json.loads(path.read_text())
        record["upper"] = "Infinity"
        path.write_text(json.dumps(record))
        reader = BracketCache(tmp_path)
        with pytest.warns(BracketCacheWarning):
            assert reader.bracket(inst) == expected
        assert reader.stats.corrupt == 1

    def test_unusable_directory_degrades_to_passthrough(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file in the way")
        cache = BracketCache(blocker / "cache")
        inst = _instance()
        assert cache.bracket(inst) == opt_bracket(inst)
        assert cache.stats.io_errors >= 1
        assert cache.stats.misses == 1


# ----------------------------------------------------------------------
# Concurrency: racing writers on a shared directory
# ----------------------------------------------------------------------


def _race_worker(cache_dir: str) -> dict:
    cache = BracketCache(cache_dir)
    brackets = [cache.bracket(_instance(seed=s, n=6)) for s in range(4)]
    return {
        "brackets": [(b.lower, b.upper, b.exact) for b in brackets],
        "stats": cache.stats.as_dict(),
    }


class TestConcurrentWriters:
    def test_racing_writers_agree(self, tmp_path):
        with multiprocessing.Pool(4) as pool:
            results = pool.map(_race_worker, [str(tmp_path)] * 4)
        assert len({tuple(r["brackets"]) for r in results}) == 1
        expected = [
            (b.lower, b.upper, b.exact)
            for b in (opt_bracket(_instance(seed=s, n=6)) for s in range(4))
        ]
        assert results[0]["brackets"] == expected
        # no worker ever saw corruption or an IO failure
        assert all(r["stats"]["corrupt"] == 0 for r in results)
        assert all(r["stats"]["io_errors"] == 0 for r in results)
        # the surviving entries are healthy
        verifier = BracketCache(tmp_path)
        for s in range(4):
            verifier.bracket(_instance(seed=s, n=6))
        assert verifier.stats.disk_hits == 4
        assert verifier.scan().entries == 4


# ----------------------------------------------------------------------
# End-to-end: the resilient runner aggregates worker cache stats
# ----------------------------------------------------------------------


def test_resilient_runner_reports_cache_stats(tmp_path):
    from functools import partial

    from repro.workloads.execute import ExecutionPolicy, execute_sweep
    from repro.workloads.sweep import SweepSpec

    spec = SweepSpec(
        epsilons=[0.2],
        machine_counts=[2],
        algorithms=["greedy"],
        workload=partial(random_instance, 6),
        repetitions=2,
        base_seed=5,
        label="cache-stats",
    )
    cold = execute_sweep(
        spec, ExecutionPolicy(workers=2, cache=BracketCache(tmp_path))
    )
    assert cold.complete
    assert cold.cache_stats is not None
    assert cold.cache_stats["misses"] == 2
    assert cold.cache_stats["writes"] == 2

    warm = execute_sweep(
        spec, ExecutionPolicy(workers=2, cache=BracketCache(tmp_path))
    )
    assert warm.complete and warm.rows == cold.rows
    assert warm.cache_stats["hits"] == 2
    assert warm.cache_stats["misses"] == 0
    assert warm.cache_stats["hit_rate"] == 1.0

    uncached = execute_sweep(spec, ExecutionPolicy(workers=2))
    assert uncached.cache_stats is None
    assert uncached.rows == cold.rows
