"""Property-based tests (hypothesis) for the core invariants.

These encode the paper's structural claims as universally-quantified
properties over random instances:

* Claim 1 — every policy run through the engine completes accepted jobs on
  time and never revises a decision (checked by the audit layer);
* the slack condition is preserved by every generator strategy;
* the bound recursion's defining identities hold for arbitrary (eps, m);
* offline bound sandwich: heuristic <= exact <= flow relaxation;
* the migration flow plan saturates exactly the feasible work.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.baselines.greedy import GreedyPolicy
from repro.baselines.lee import LeeStylePolicy
from repro.baselines.migration import flow_schedule, migration_feasible
from repro.core.params import c_bound, corner_values, threshold_parameters
from repro.core.threshold import ThresholdPolicy
from repro.engine.audit import audit_run
from repro.engine.preemptive import ActiveJob, edf_feasible
from repro.engine.simulator import simulate
from repro.model.instance import Instance
from repro.model.job import Job
from repro.offline.bounds import flow_upper_bound
from repro.offline.exact import exact_optimum
from repro.offline.heuristics import opt_lower_bound

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

epsilons = st.floats(min_value=0.02, max_value=1.0, allow_nan=False)
machine_counts = st.integers(min_value=1, max_value=5)


@st.composite
def instances(draw, max_jobs=18, max_machines=3):
    """Random valid instances with controlled slack."""
    eps = draw(st.floats(min_value=0.05, max_value=1.0))
    m = draw(st.integers(min_value=1, max_value=max_machines))
    n = draw(st.integers(min_value=0, max_value=max_jobs))
    jobs = []
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(min_value=0.0, max_value=2.0))
        p = draw(st.floats(min_value=0.05, max_value=4.0))
        extra = draw(st.floats(min_value=0.0, max_value=3.0))
        jobs.append(Job(t, p, t + (1.0 + eps + extra) * p))
    return Instance(jobs, machines=m, epsilon=eps)


@st.composite
def small_instances(draw):
    """Instances small enough for the exact solver."""
    inst = draw(instances(max_jobs=8, max_machines=2))
    return inst


# ----------------------------------------------------------------------
# Engine / Claim 1
# ----------------------------------------------------------------------


class TestEngineInvariants:
    @given(inst=instances())
    @settings(max_examples=60, deadline=None)
    def test_threshold_claim1_and_commitment(self, inst):
        schedule = simulate(ThresholdPolicy(), inst)
        audit_run(schedule)  # deadline misses / revisions raise

    @given(inst=instances())
    @settings(max_examples=40, deadline=None)
    def test_greedy_and_lee_audits(self, inst):
        for policy in (GreedyPolicy(), LeeStylePolicy()):
            audit_run(simulate(policy, inst))

    @given(inst=instances())
    @settings(max_examples=40, deadline=None)
    def test_accepted_plus_rejected_partition(self, inst):
        s = simulate(ThresholdPolicy(), inst)
        assert len(s.assignments) + len(s.rejected) == len(inst)

    @given(inst=instances())
    @settings(max_examples=40, deadline=None)
    def test_accepted_load_bounded_by_total(self, inst):
        s = simulate(ThresholdPolicy(), inst)
        assert s.accepted_load <= inst.total_load + 1e-9


# ----------------------------------------------------------------------
# Bound function identities
# ----------------------------------------------------------------------


class TestBoundInvariants:
    @given(eps=epsilons, m=machine_counts)
    @settings(max_examples=80, deadline=None)
    def test_parameter_identities(self, eps, m):
        params = threshold_parameters(eps, m)
        params.verify()

    @given(eps=epsilons, m=machine_counts)
    @settings(max_examples=60, deadline=None)
    def test_c_floor_at_full_slack(self, eps, m):
        # c is decreasing in eps, so c(eps, m) >= c(1, m) = 2 + 1/m.
        assert c_bound(eps, m) >= 2.0 + 1.0 / m - 1e-9

    @given(eps=epsilons, m=st.integers(min_value=2, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_more_machines_never_hurt(self, eps, m):
        assert c_bound(eps, m) <= c_bound(eps, m - 1) + 1e-9

    @given(m=st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_corners_strictly_increasing(self, m):
        corners = corner_values(m)
        assert all(a < b for a, b in zip(corners, corners[1:]))


# ----------------------------------------------------------------------
# Offline bound sandwich
# ----------------------------------------------------------------------


class TestOfflineSandwich:
    @given(inst=small_instances())
    @settings(
        max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_heuristic_le_exact_le_flow(self, inst):
        exact = exact_optimum(inst).value
        assert opt_lower_bound(inst) <= exact + 1e-6
        assert exact <= flow_upper_bound(inst) + 1e-6

    @given(inst=small_instances())
    @settings(
        max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_online_never_beats_exact(self, inst):
        s = simulate(ThresholdPolicy(), inst)
        assert s.accepted_load <= exact_optimum(inst).value + 1e-6


# ----------------------------------------------------------------------
# Preemptive / migration substrate
# ----------------------------------------------------------------------


class TestPreemptiveInvariants:
    @given(
        data=st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=3.0),
                st.floats(min_value=0.1, max_value=10.0),
            ),
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_edf_matches_prefix_condition(self, data):
        items = [
            ActiveJob(Job(0.0, r, max(d, r), job_id=i), r)
            for i, (r, d) in enumerate(data)
        ]
        # EDF feasibility iff prefix sums in EDD order meet deadlines.
        ordered = sorted(items, key=lambda a: a.deadline)
        clock, expected = 0.0, True
        for a in ordered:
            clock += a.remaining
            if clock > a.deadline + 1e-9:
                expected = False
                break
        assert edf_feasible(0.0, items) == expected

    @given(
        data=st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=3.0),
                st.floats(min_value=0.2, max_value=10.0),
            ),
            min_size=1,
            max_size=7,
        ),
        m=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_flow_plan_consistent_with_feasibility(self, data, m):
        remainders = [(r, max(d, r)) for r, d in data]
        total = sum(r for r, _ in remainders)
        value, plan = flow_schedule(0.0, remainders, m)
        feasible = migration_feasible(0.0, remainders, m)
        if feasible:
            assert value >= total - 1e-6
        else:
            assert value < total - 1e-7
        # Plan always respects capacities.
        for lo, hi, per_job in plan:
            assert sum(per_job) <= m * (hi - lo) + 1e-6
            assert all(w <= (hi - lo) + 1e-9 for w in per_job)

    @given(
        data=st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=3.0),
                st.floats(min_value=0.2, max_value=10.0),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_migration_feasibility_monotone_in_machines(self, data):
        remainders = [(r, max(d, r)) for r, d in data]
        feas = [migration_feasible(0.0, remainders, m) for m in (1, 2, 4)]
        # Once feasible, more machines keep it feasible.
        for a, b in zip(feas, feas[1:]):
            assert b or not a
