"""Property tests for the extension subsystems.

Quantified invariants for the commitment-model engines, the weighted
adversary, and trace serialization.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.weighted import weighted_duel
from repro.baselines.greedy import GreedyPolicy
from repro.engine.delayed import DelayedGreedyPolicy, simulate_delayed
from repro.engine.penalties import RevocableGreedyPolicy, simulate_with_penalties
from repro.model.instance import Instance
from repro.model.job import Job
from repro.workloads.traces import instance_from_csv, instance_to_csv


@st.composite
def small_instances(draw):
    eps = draw(st.floats(min_value=0.05, max_value=1.0))
    m = draw(st.integers(min_value=1, max_value=3))
    n = draw(st.integers(min_value=0, max_value=14))
    jobs = []
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(min_value=0.0, max_value=1.5))
        p = draw(st.floats(min_value=0.05, max_value=3.0))
        extra = draw(st.floats(min_value=0.0, max_value=2.0))
        jobs.append(Job(t, p, t + (1.0 + eps + extra) * p))
    return Instance(jobs, machines=m, epsilon=eps)


class TestDelayedInvariants:
    @given(inst=small_instances(), frac=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_audited_for_any_delta(self, inst, frac):
        schedule = simulate_delayed(DelayedGreedyPolicy(), inst, frac * inst.epsilon)
        schedule.audit()
        assert len(schedule.assignments) + len(schedule.rejected) == len(inst)

    @given(inst=small_instances())
    @settings(max_examples=30, deadline=None)
    def test_no_lookahead_variant_also_sound(self, inst):
        schedule = simulate_delayed(
            DelayedGreedyPolicy(lookahead=False), inst, inst.epsilon
        )
        schedule.audit()


class TestPenaltyInvariants:
    @given(inst=small_instances(), phi=st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=40, deadline=None)
    def test_outcome_consistency(self, inst, phi):
        out = simulate_with_penalties(RevocableGreedyPolicy(), inst, phi)
        out.audit()
        assert out.net_value <= out.completed_load + 1e-9
        assert out.penalty_paid >= 0.0
        assert len(out.completed) + len(out.revoked) + len(out.rejected) == len(inst)

    @given(inst=small_instances())
    @settings(max_examples=25, deadline=None)
    def test_infinite_penalty_means_no_revocations(self, inst):
        out = simulate_with_penalties(RevocableGreedyPolicy(), inst, 1e12)
        assert len(out.revoked) == 0


class TestWeightedInvariants:
    @given(
        m=st.integers(min_value=1, max_value=4),
        eps=st.floats(min_value=0.05, max_value=1.0),
        escalation=st.floats(min_value=2.0, max_value=500.0),
    )
    @settings(
        max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_forced_ratio_at_least_escalation_minus_one(self, m, eps, escalation):
        result = weighted_duel(GreedyPolicy(), m=m, epsilon=eps, escalation=escalation)
        assert result.forced_ratio >= escalation - 1.0 - 1e-6


class TestTraceInvariants:
    @given(inst=small_instances())
    @settings(max_examples=40, deadline=None)
    def test_csv_roundtrip_preserves_everything(self, inst):
        back = instance_from_csv(instance_to_csv(inst))
        assert back.machines == inst.machines
        assert back.epsilon == inst.epsilon
        assert len(back) == len(inst)
        for a, b in zip(inst, back):
            assert (a.release, a.processing, a.deadline) == (
                b.release,
                b.processing,
                b.deadline,
            )


class TestScheduleSerializationInvariants:
    @given(inst=small_instances())
    @settings(max_examples=30, deadline=None)
    def test_threshold_schedule_json_roundtrip(self, inst):
        from repro.core.threshold import ThresholdPolicy
        from repro.engine.simulator import simulate
        from repro.model.schedule import Schedule

        schedule = simulate(ThresholdPolicy(), inst)
        back = Schedule.from_json(schedule.to_json())
        assert back.accepted_load == schedule.accepted_load
        assert back.rejected == schedule.rejected
        assert {
            (a.job_id, a.machine, a.start) for a in back.assignments.values()
        } == {(a.job_id, a.machine, a.start) for a in schedule.assignments.values()}
