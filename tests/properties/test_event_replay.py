"""Property: kernel event streams replay to the exact same schedule.

For every schedule-producing commitment model, running with
``record_events=True`` must yield an event stream from which
:func:`repro.engine.kernel.replay_events` reconstructs the schedule
bit-for-bit (assignments, machines, start times, rejections).  This pins
the event stream as a faithful, lossless account of the run — the
contract the observability layer (CLI event dumps, future persistent
tracing) depends on.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.greedy import GreedyPolicy
from repro.core.threshold import ThresholdPolicy
from repro.engine import (
    AdmissionGreedyPolicy,
    AdmissionLazyPolicy,
    DelayedGreedyPolicy,
    replay_events,
    simulate,
    simulate_admission,
    simulate_delayed,
)
from repro.model.instance import Instance
from repro.model.job import Job


@st.composite
def instances(draw, max_jobs=16, max_machines=3):
    """Random valid instances with controlled slack."""
    eps = draw(st.floats(min_value=0.05, max_value=1.0))
    m = draw(st.integers(min_value=1, max_value=max_machines))
    n = draw(st.integers(min_value=0, max_value=max_jobs))
    jobs = []
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(min_value=0.0, max_value=2.0))
        p = draw(st.floats(min_value=0.05, max_value=4.0))
        extra = draw(st.floats(min_value=0.0, max_value=3.0))
        jobs.append(Job(t, p, t + (1.0 + eps + extra) * p))
    return Instance(jobs, machines=m, epsilon=eps)


def _assert_replays(schedule, instance):
    replayed = replay_events(instance, schedule.meta["events"])
    assert replayed.assignments == schedule.assignments
    assert replayed.rejected == schedule.rejected
    assert replayed.accepted_load == schedule.accepted_load


@given(instances())
@settings(max_examples=40, deadline=None)
def test_immediate_events_replay(inst):
    _assert_replays(simulate(GreedyPolicy(), inst, record_events=True), inst)


@given(instances())
@settings(max_examples=40, deadline=None)
def test_threshold_events_replay(inst):
    _assert_replays(simulate(ThresholdPolicy(), inst, record_events=True), inst)


@given(instances(), st.floats(min_value=0.0, max_value=0.05))
@settings(max_examples=40, deadline=None)
def test_delayed_events_replay(inst, delta):
    schedule = simulate_delayed(DelayedGreedyPolicy(), inst, delta, record_events=True)
    _assert_replays(schedule, inst)


@given(instances())
@settings(max_examples=40, deadline=None)
def test_admission_events_replay(inst):
    schedule = simulate_admission(AdmissionGreedyPolicy(), inst, record_events=True)
    _assert_replays(schedule, inst)


@given(instances())
@settings(max_examples=25, deadline=None)
def test_admission_lazy_events_replay(inst):
    schedule = simulate_admission(AdmissionLazyPolicy(), inst, record_events=True)
    _assert_replays(schedule, inst)


@given(instances())
@settings(max_examples=25, deadline=None)
def test_event_stream_is_time_ordered(inst):
    schedule = simulate(GreedyPolicy(), inst, record_events=True)
    times = [e.time for e in schedule.meta["events"]]
    assert times == sorted(times)
