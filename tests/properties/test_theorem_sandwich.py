"""The Theorem-1/Theorem-2 sandwich as a universally quantified property.

For random (m, eps) the adversary's forced ratio on the Threshold
algorithm must land in

    [ c(eps, m) * (1 - beta_tolerance),  theorem2_bound(eps, m) + tol ]

— lower end by Theorem 1 (up to the Lemma-1 discretisation), upper end by
Theorem 2.  This is the strongest single statement the reproduction can
make, and hypothesis hammers it across the parameter space.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.base import duel
from repro.core.guarantees import theorem2_bound
from repro.core.params import c_bound
from repro.core.threshold import ThresholdPolicy


class TestTheoremSandwich:
    @given(
        m=st.integers(min_value=1, max_value=5),
        eps=st.floats(min_value=0.03, max_value=1.0),
    )
    @settings(max_examples=35, deadline=None)
    def test_threshold_forced_ratio_sandwiched(self, m, eps):
        result = duel(ThresholdPolicy(), m=m, epsilon=eps)
        lower = c_bound(eps, m)
        upper = theorem2_bound(eps, m)
        assert result.forced_ratio >= lower * (1.0 - 6e-3), (m, eps)
        assert result.forced_ratio <= upper + 0.02, (m, eps)

    @given(
        m=st.integers(min_value=1, max_value=4),
        eps=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_adversary_instance_always_valid(self, m, eps):
        result = duel(ThresholdPolicy(), m=m, epsilon=eps)
        instance = result.schedule.instance
        instance.validate()
        for job in instance:
            assert job.satisfies_slack(eps)

    @given(
        m=st.integers(min_value=2, max_value=4),
        eps=st.floats(min_value=0.05, max_value=0.9),
    )
    @settings(max_examples=20, deadline=None)
    def test_constructive_opt_is_lower_bound_of_flow(self, m, eps):
        result = duel(ThresholdPolicy(), m=m, epsilon=eps, verify_opt=True)
        assert result.flow_opt_bound is not None
        assert result.constructive_opt <= result.flow_opt_bound + 1e-6
