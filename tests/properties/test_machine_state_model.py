"""Model-based test of the optimised MachineState.

The production class keeps sorted arrays + prefix sums for O(log n)
queries; this test drives it in lock-step with a deliberately naive
reference implementation (linear scans over a plain commitment list) and
checks every observable after every operation — the standard guard for
index/off-by-one bugs in bisect-based rewrites.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.job import Job
from repro.model.machine import MachineState
from repro.utils.tolerances import TIME_EPS, fge


class NaiveMachine:
    """Straightforward reference: list of (job, start), linear scans."""

    def __init__(self) -> None:
        self.commitments: list[tuple[Job, float]] = []

    def can_commit(self, job: Job, start: float) -> bool:
        if not job.feasible_start(start):
            return False
        end = start + job.processing
        for other, o_start in self.commitments:
            o_end = o_start + other.processing
            if start < o_end - TIME_EPS and o_start < end - TIME_EPS:
                return False
        return True

    def commit(self, job: Job, start: float) -> None:
        self.commitments.append((job, start))

    def outstanding(self, t: float) -> float:
        total = 0.0
        for job, start in self.commitments:
            end = start + job.processing
            if end > t:
                total += end - max(start, t)
        return total

    def completion_frontier(self, t: float) -> float:
        frontier = t
        for job, start in self.commitments:
            frontier = max(frontier, start + job.processing)
        return frontier

    def busy_at(self, t: float) -> bool:
        return any(
            start - TIME_EPS <= t < start + job.processing - TIME_EPS
            for job, start in self.commitments
        )

    def committed_load(self) -> float:
        return sum(job.processing for job, _ in self.commitments)


@st.composite
def operation_sequences(draw):
    """A sequence of (processing, start-offset) commit attempts + probes."""
    n_ops = draw(st.integers(min_value=1, max_value=25))
    ops = []
    for _ in range(n_ops):
        p = draw(st.floats(min_value=0.1, max_value=3.0))
        start = draw(st.floats(min_value=0.0, max_value=20.0))
        ops.append((round(p, 4), round(start, 4)))
    probes = draw(
        st.lists(
            st.floats(min_value=-1.0, max_value=30.0), min_size=3, max_size=10
        )
    )
    return ops, probes


class TestMachineStateAgainstModel:
    @given(data=operation_sequences())
    @settings(max_examples=150, deadline=None)
    def test_lockstep_with_naive_reference(self, data):
        ops, probes = data
        fast = MachineState(0)
        slow = NaiveMachine()
        for i, (p, start) in enumerate(ops):
            job = Job(0.0, p, start + p + 1.0, job_id=i)
            if slow.can_commit(job, start):
                fast.commit(job, start)
                slow.commit(job, start)
            else:
                # The fast structure must refuse exactly the same commits.
                try:
                    fast.commit(job, start)
                except ValueError:
                    continue
                raise AssertionError(
                    f"fast accepted a commit the reference refuses: {job} @ {start}"
                )
            for t in probes:
                t = max(t, 0.0)
                assert abs(fast.outstanding(t) - slow.outstanding(t)) < 1e-7
                assert abs(
                    fast.completion_frontier(t) - slow.completion_frontier(t)
                ) < 1e-9
                assert fast.busy_at(t) == slow.busy_at(t), (t, fast.commitments)
            assert abs(fast.committed_load() - slow.committed_load()) < 1e-9
            assert len(fast) == len(slow.commitments)

    @given(data=operation_sequences())
    @settings(max_examples=60, deadline=None)
    def test_clone_is_equivalent(self, data):
        ops, probes = data
        fast = MachineState(0)
        for i, (p, start) in enumerate(ops):
            job = Job(0.0, p, start + p + 1.0, job_id=i)
            try:
                fast.commit(job, start)
            except ValueError:
                continue
        clone = fast.clone()
        for t in probes:
            t = max(t, 0.0)
            assert clone.outstanding(t) == fast.outstanding(t)
            assert clone.busy_at(t) == fast.busy_at(t)

    @given(
        p=st.floats(min_value=0.1, max_value=5.0),
        t=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_fits_consistent_with_append_start(self, p, t):
        ms = MachineState(0)
        ms.commit(Job(0.0, 2.0, 100.0, job_id=0), 0.0)
        job = Job(0.0, p, t + p + 2.0 + TIME_EPS, job_id=1)
        start = ms.append_start(job, t)
        assert ms.fits(job, t) == fge(job.deadline, start + job.processing)
