"""Property tests for the capacity planner and latency analytics."""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.capacity import machines_for_target, slack_for_target
from repro.analysis.latency import latency_stats
from repro.core.guarantees import theorem2_bound
from repro.core.threshold import ThresholdPolicy
from repro.engine.simulator import simulate
from repro.workloads import random_instance


class TestPlannerInvariants:
    @given(
        eps=st.floats(min_value=0.05, max_value=1.0),
        target=st.floats(min_value=2.2, max_value=50.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_machines_answer_meets_target_and_is_minimal(self, eps, target):
        m = machines_for_target(eps, target)
        if m is None:
            return
        assert theorem2_bound(eps, m) <= target
        # Minimality: no smaller fleet meets it.
        for smaller in range(1, m):
            assert theorem2_bound(eps, smaller) > target

    @given(
        m=st.integers(min_value=1, max_value=8),
        target=st.floats(min_value=2.2, max_value=60.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_slack_answer_meets_target(self, m, target):
        eps = slack_for_target(m, target)
        if eps is None:
            assert theorem2_bound(1.0, m) > target
            return
        assert theorem2_bound(eps, m) <= target + 1e-6

    @given(
        eps=st.floats(min_value=0.05, max_value=1.0),
        t1=st.floats(min_value=2.5, max_value=30.0),
        t2=st.floats(min_value=2.5, max_value=30.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_machines_monotone_in_target(self, eps, t1, t2):
        lo, hi = sorted((t1, t2))
        m_easy = machines_for_target(eps, hi)
        m_hard = machines_for_target(eps, lo)
        if m_easy is not None and m_hard is not None:
            assert m_easy <= m_hard


class TestLatencyInvariants:
    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_order_statistics_consistent(self, seed):
        inst = random_instance(25, 2, 0.3, seed=seed)
        stats = latency_stats(simulate(ThresholdPolicy(), inst))
        if stats.count == 0:
            return
        assert 0.0 <= stats.median_wait <= stats.p95_wait <= stats.max_wait + 1e-12
        assert stats.mean_flow >= stats.mean_wait
        assert stats.mean_stretch >= 1.0 - 1e-12
