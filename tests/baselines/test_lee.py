"""Unit tests for the Lee-style classify-by-size reconstruction."""

import pytest

from repro.baselines.lee import LeeStylePolicy
from repro.engine.simulator import simulate
from repro.model.instance import Instance
from repro.model.job import Job, tight_deadline
from repro.workloads import random_instance


class TestClassification:
    def test_anchor_set_by_first_job(self):
        policy = LeeStylePolicy()
        policy.reset(3, 0.1)
        inst = Instance([Job(0, 2.0, 50.0)], machines=3, epsilon=0.1)
        simulate(policy, inst)
        assert policy.describe()["anchor"] == 2.0

    def test_class_width_is_eps_pow_inv_m(self):
        policy = LeeStylePolicy()
        policy.reset(4, 0.0625)
        assert policy.describe()["class_ratio"] == pytest.approx(0.0625 ** (-1 / 4))

    def test_size_class_geometric_boundaries(self):
        policy = LeeStylePolicy()
        policy.reset(2, 0.25)  # ratio = 2
        policy._anchor = 1.0
        assert policy.size_class(1.0) == 0
        assert policy.size_class(1.9) == 0
        assert policy.size_class(2.0) == 1
        assert policy.size_class(3.9) == 1
        assert policy.size_class(4.0) == 0  # wraps modulo m

    def test_small_sizes_wrap_negative(self):
        policy = LeeStylePolicy()
        policy.reset(2, 0.25)  # ratio 2
        policy._anchor = 1.0
        assert policy.size_class(0.6) == 1  # class -1 mod 2

    def test_epsilon_one_degenerates_to_single_class(self):
        policy = LeeStylePolicy()
        policy.reset(2, 1.0)
        policy._anchor = 1.0
        assert policy.size_class(0.1) == 0
        assert policy.size_class(10.0) == 0


class TestBehaviour:
    def test_each_class_on_its_machine(self):
        eps = 0.25  # m=2 -> ratio 2: sizes 1 -> class 0, 2..4 -> class 1
        jobs = [
            Job(0.0, 1.0, tight_deadline(0.0, 1.0, 5.0)),
            Job(0.0, 3.0, tight_deadline(0.0, 3.0, 5.0)),
            Job(0.0, 1.1, tight_deadline(0.0, 1.1, 5.0)),
        ]
        inst = Instance(jobs, machines=2, epsilon=eps)
        s = simulate(LeeStylePolicy(), inst)
        assert s.assignments[0].machine == 0
        assert s.assignments[1].machine == 1
        assert s.assignments[2].machine == 0

    def test_rejects_when_class_machine_busy(self):
        eps = 0.1
        jobs = [
            Job(0.0, 1.0, tight_deadline(0.0, 1.0, eps)),
            Job(0.0, 1.0, tight_deadline(0.0, 1.0, eps)),  # same class, no room
        ]
        inst = Instance(jobs, machines=2, epsilon=eps)
        s = simulate(LeeStylePolicy(), inst)
        assert s.accepted_count == 1
        assert s.meta["trace"].records[1].decision.info["reason"] == "class machine busy"

    def test_never_misses_deadlines(self):
        inst = random_instance(60, 3, 0.15, seed=9, distribution="lognormal")
        s = simulate(LeeStylePolicy(), inst)
        s.audit()
