"""Unit tests for the greedy baseline."""

import pytest

from repro.baselines.greedy import GreedyPolicy
from repro.engine.simulator import simulate
from repro.model.instance import Instance
from repro.model.job import Job, tight_deadline


def run(jobs, m=2, eps=0.5, placement="best-fit"):
    inst = Instance(jobs, machines=m, epsilon=eps)
    return simulate(GreedyPolicy(placement=placement), inst)


class TestAdmission:
    def test_accepts_whenever_feasible(self):
        s = run([Job(0, 1, 2), Job(0, 1, 2), Job(0, 1, 2)], m=2, eps=1.0)
        # Third job cannot fit anywhere (both machines busy [0,1], d=2,
        # appending would finish at 2 on the loaded machine... machine 1
        # holds one job ending 1, so start 1 end 2 <= 2 feasible).
        assert s.accepted_count == 3

    def test_rejects_only_when_no_machine_fits(self):
        jobs = [Job(0, 2, 3), Job(0, 2, 3), Job(0, 2, 3)]
        s = run(jobs, m=2, eps=0.5)
        assert s.accepted_count == 2
        assert 2 in s.rejected

    def test_never_misses_deadline(self):
        jobs = []
        t = 0.0
        for i in range(30):
            p = 0.3 + (i % 4) * 0.4
            jobs.append(Job(t, p, tight_deadline(t, p, 0.2)))
            t += 0.2
        s = run(jobs, m=3, eps=0.2)
        s.audit()


class TestPlacement:
    def _machines_setup(self):
        # job0 -> machine 0; job1 with best-fit -> also machine 0.
        return [Job(0, 2, 50), Job(0, 1, 50)]

    def test_best_fit_stacks_on_loaded_machine(self):
        s = run(self._machines_setup(), m=2, eps=1.0, placement="best-fit")
        assert s.assignments[1].machine == s.assignments[0].machine

    def test_least_loaded_spreads(self):
        s = run(self._machines_setup(), m=2, eps=1.0, placement="least-loaded")
        assert s.assignments[1].machine != s.assignments[0].machine

    def test_first_fit_prefers_low_index(self):
        s = run(self._machines_setup(), m=2, eps=1.0, placement="first-fit")
        assert s.assignments[1].machine == 0

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            GreedyPolicy(placement="random")  # type: ignore[arg-type]

    def test_names(self):
        assert GreedyPolicy().name == "greedy"
        assert GreedyPolicy(placement="first-fit").name == "greedy[first-fit]"


class TestGreedyTrap:
    def test_long_job_blocks_shorts(self):
        # Greedy accepts a long tight job, then must reject short ones —
        # the (2 + 1/eps) failure mode.
        eps = 0.2
        jobs = [Job(0.0, 10.0, tight_deadline(0.0, 10.0, eps))]
        t = 0.5
        for _ in range(8):
            jobs.append(Job(t, 1.0, tight_deadline(t, 1.0, eps)))
            t += 0.1
        s = run(jobs, m=1, eps=eps)
        assert s.is_accepted(0)
        assert s.accepted_count == 1  # everything else blocked
