"""Unit tests for the Goldwasser–Kerbikov baseline.

The headline check: the baseline is *identical in behaviour* to the
paper's Threshold algorithm at m = 1 (Section 1.1 claims the match).
"""

import pytest

from repro.baselines.goldwasser import GoldwasserKerbikovPolicy
from repro.core.threshold import ThresholdPolicy
from repro.engine.simulator import simulate
from repro.workloads import random_instance


class TestIdentityWithThreshold:
    @pytest.mark.parametrize("eps", [0.05, 0.25, 0.8])
    def test_same_decisions_as_threshold_m1(self, eps):
        inst = random_instance(50, 1, eps, seed=4)
        gk = simulate(GoldwasserKerbikovPolicy(), inst)
        th = simulate(ThresholdPolicy(), inst)
        assert set(gk.assignments) == set(th.assignments)
        assert gk.accepted_load == pytest.approx(th.accepted_load)

    def test_rule_surfaces_in_info(self):
        inst = random_instance(3, 1, 0.5, seed=1)
        s = simulate(GoldwasserKerbikovPolicy(), inst)
        assert s.meta["trace"].records[0].decision.info.get("rule")


class TestGuards:
    def test_rejects_multi_machine(self):
        policy = GoldwasserKerbikovPolicy()
        with pytest.raises(ValueError, match="single-machine"):
            policy.reset(2, 0.5)

    def test_name(self):
        assert GoldwasserKerbikovPolicy().name == "goldwasser-kerbikov"
