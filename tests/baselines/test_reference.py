"""Tests for the oracle and random-admission reference policies."""

import pytest

from repro.baselines.reference import OraclePolicy, RandomAdmissionPolicy, run_oracle
from repro.engine.simulator import simulate
from repro.offline.exact import exact_optimum
from repro.offline.heuristics import best_offline_schedule
from repro.workloads import random_instance


class TestOracle:
    def test_matches_exact_optimum_small(self):
        inst = random_instance(10, 2, 0.2, seed=4)
        schedule = run_oracle(inst)
        assert schedule.accepted_load == pytest.approx(exact_optimum(inst).value)
        schedule.audit()

    def test_matches_heuristic_large(self):
        inst = random_instance(60, 2, 0.2, seed=4)
        schedule = run_oracle(inst)
        assert schedule.accepted_load == pytest.approx(
            best_offline_schedule(inst).accepted_load
        )

    def test_dominates_online_algorithms_small(self):
        from repro.core.threshold import ThresholdPolicy

        inst = random_instance(12, 2, 0.25, seed=8)
        oracle = run_oracle(inst).accepted_load
        online = simulate(ThresholdPolicy(), inst).accepted_load
        assert oracle >= online - 1e-9

    def test_requires_priming(self):
        inst = random_instance(5, 1, 0.2, seed=0)
        with pytest.raises(RuntimeError, match="prime"):
            simulate(OraclePolicy(), inst)

    def test_explicit_plan_accepted(self):
        inst = random_instance(8, 2, 0.2, seed=1)
        plan = best_offline_schedule(inst)
        schedule = simulate(OraclePolicy(plan=plan), inst)
        assert schedule.accepted_load == pytest.approx(plan.accepted_load)


class TestRandomAdmission:
    def test_q_zero_rejects_all(self):
        inst = random_instance(20, 2, 0.2, seed=2)
        s = simulate(RandomAdmissionPolicy(q=0.0), inst)
        assert s.accepted_count == 0

    def test_q_one_equals_feasibility_greedy_count(self):
        inst = random_instance(20, 2, 0.2, seed=2)
        s = simulate(RandomAdmissionPolicy(q=1.0), inst)
        assert s.accepted_count > 0
        s.audit()

    def test_q_validation(self):
        with pytest.raises(ValueError):
            RandomAdmissionPolicy(q=1.5)

    def test_deterministic_given_seed(self):
        inst = random_instance(30, 2, 0.2, seed=3)
        a = simulate(RandomAdmissionPolicy(q=0.5, rng=7), inst).accepted_load
        b = simulate(RandomAdmissionPolicy(q=0.5, rng=7), inst).accepted_load
        assert a == b

    def test_monotone_in_q_on_average(self):
        inst = random_instance(80, 2, 0.2, seed=5)
        lo = simulate(RandomAdmissionPolicy(q=0.2, rng=1), inst).accepted_load
        hi = simulate(RandomAdmissionPolicy(q=0.9, rng=1), inst).accepted_load
        assert hi > lo
