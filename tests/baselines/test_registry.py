"""Unit tests for the algorithm registry and uniform runner."""

import pytest

from repro.baselines.registry import ALGORITHMS, make_algorithm, run_algorithm
from repro.model.schedule import Schedule
from repro.workloads import random_instance


class TestRegistry:
    def test_expected_algorithms_registered(self):
        for name in [
            "threshold",
            "greedy",
            "goldwasser-kerbikov",
            "lee-style",
            "dasgupta-palis",
            "migration-greedy",
            "classify-select",
        ]:
            assert name in ALGORITHMS

    def test_make_algorithm(self):
        policy = make_algorithm("threshold")
        assert policy.name == "threshold"

    def test_make_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            make_algorithm("bogus")

    def test_specs_have_descriptions(self):
        for spec in ALGORITHMS.values():
            assert spec.description


class TestRunner:
    @pytest.fixture
    def inst(self):
        return random_instance(25, 2, 0.2, seed=5)

    def test_nonpreemptive_run(self, inst):
        r = run_algorithm("threshold", inst)
        assert isinstance(r.detail, Schedule)
        assert r.accepted_load == r.detail.accepted_load

    def test_preemptive_run(self, inst):
        r = run_algorithm("dasgupta-palis", inst)
        assert r.accepted_load > 0
        assert r.acceptance_rate <= 1.0

    def test_migration_run(self, inst):
        r = run_algorithm("migration-greedy", inst)
        assert r.accepted_load > 0

    def test_single_machine_guard(self, inst):
        with pytest.raises(ValueError, match="single-machine"):
            run_algorithm("goldwasser-kerbikov", inst)

    def test_unknown_name(self, inst):
        with pytest.raises(KeyError):
            run_algorithm("bogus", inst)

    def test_kwargs_forwarded(self):
        inst1 = random_instance(20, 1, 0.1, seed=2)
        r = run_algorithm("classify-select", inst1, virtual_machines=3, selected=0)
        assert r.accepted_load >= 0.0

    def test_acceptance_rate_empty_instance(self):
        from repro.model.instance import Instance

        empty = Instance([], machines=1, epsilon=0.5)
        r = run_algorithm("threshold", empty)
        assert r.acceptance_rate == 1.0

    def test_every_nonrandom_algorithm_runs(self, inst):
        for name, spec in ALGORITHMS.items():
            if spec.single_machine_only:
                continue
            r = run_algorithm(name, inst)
            assert r.accepted_load >= 0.0, name


class TestExtendedModels:
    def test_delayed_model_runs_with_default_delta(self):
        inst = random_instance(20, 2, 0.25, seed=4)
        r = run_algorithm("delayed-greedy", inst)
        assert r.accepted_load > 0
        assert r.detail.meta["delta"] == pytest.approx(0.25)

    def test_delayed_model_respects_delta_kwarg(self):
        inst = random_instance(20, 2, 0.25, seed=4)
        r = run_algorithm("delayed-greedy", inst, delta=0.0)
        assert r.detail.meta["delta"] == 0.0

    def test_admission_model_runs(self):
        inst = random_instance(20, 2, 0.25, seed=4)
        r = run_algorithm("admission-lazy", inst)
        assert r.detail.meta["model"] == "commitment-on-admission"

    def test_taxonomy_names_registered(self):
        for name in ("delayed-greedy", "admission-greedy", "admission-lazy"):
            assert name in ALGORITHMS
