"""Unit tests for the migration-model baseline and its flow oracle."""

import pytest

from repro.baselines.migration import (
    MigrationGreedyScheduler,
    flow_schedule,
    migration_feasible,
)
from repro.model.instance import Instance
from repro.model.job import Job
from repro.workloads import random_instance


class TestFlowFeasibility:
    def test_empty_feasible(self):
        assert migration_feasible(0.0, [], 2)

    def test_single_job(self):
        assert migration_feasible(0.0, [(2.0, 3.0)], 1)
        assert not migration_feasible(0.0, [(2.0, 1.5)], 1)

    def test_parallel_capacity(self):
        # 3 jobs of 2 by deadline 3 on 2 machines: 6 <= 6 and each <= 3.
        assert migration_feasible(0.0, [(2.0, 3.0)] * 3, 2)
        # 4 such jobs: 8 > 6.
        assert not migration_feasible(0.0, [(2.0, 3.0)] * 4, 2)

    def test_no_self_parallelism(self):
        # One job of 4 by deadline 3 is infeasible even on 10 machines.
        assert not migration_feasible(0.0, [(4.0, 3.0)], 10)

    def test_mcnaughton_classic(self):
        # A(4,d4), B(4,d4), C(4,d6) on 2 machines is infeasible (C can get
        # at most 2 units after 4).
        assert not migration_feasible(0.0, [(4.0, 4.0), (4.0, 4.0), (4.0, 6.0)], 2)

    def test_deadline_in_past_infeasible(self):
        assert not migration_feasible(5.0, [(1.0, 4.0)], 2)

    def test_now_offset_respected(self):
        assert migration_feasible(1.0, [(2.0, 3.0)], 1)
        assert not migration_feasible(1.5, [(2.0, 3.0)], 1)


class TestFlowSchedule:
    def test_plan_saturates_feasible_work(self):
        remainders = [(2.0, 3.0), (2.0, 3.0), (1.0, 5.0)]
        value, plan = flow_schedule(0.0, remainders, 2)
        assert value == pytest.approx(5.0)
        # Per-interval totals within machine capacity; per-job within length.
        for lo, hi, per_job in plan:
            assert sum(per_job) <= 2 * (hi - lo) + 1e-9
            assert all(w <= (hi - lo) + 1e-9 for w in per_job)
        # Each job's plan total equals its remainder.
        for j, (rem, _) in enumerate(remainders):
            assert sum(p[j] for _, _, p in plan) == pytest.approx(rem)

    def test_empty_plan(self):
        value, plan = flow_schedule(0.0, [(0.0, 5.0)], 2)
        assert value == 0.0 and plan == []


class TestScheduler:
    def test_accepts_everything_when_easy(self):
        jobs = [Job(0, 1, 5), Job(0.5, 1, 6), Job(1, 1, 7)]
        inst = Instance(jobs, machines=2, epsilon=1.0)
        out = MigrationGreedyScheduler().run(inst)
        assert out.accepted_load == pytest.approx(3.0)

    def test_rejects_infeasible_additions(self):
        jobs = [Job(0, 2, 2.4), Job(0, 2, 2.4), Job(0, 2, 2.4)]
        inst = Instance(jobs, machines=2, epsilon=0.2)
        out = MigrationGreedyScheduler().run(inst)
        assert len(out.accepted_ids) == 2

    def test_edf_counterexample_handled(self):
        # The 7-job state where global EDF misses a deadline: the fluid
        # flow executor completes everything (regression test for the EDF
        # executor bug found during development).
        inst = random_instance(30, 3, 0.2, seed=7)
        out = MigrationGreedyScheduler().run(inst)
        out.audit()

    @pytest.mark.parametrize("seed", range(6))
    def test_never_misses_deadline_random(self, seed):
        inst = random_instance(50, 3, 0.15, seed=seed)
        out = MigrationGreedyScheduler().run(inst)
        out.audit()

    def test_accepts_at_least_nonmigratory_baseline(self):
        # Migration is the most powerful model; feasibility-greedy with
        # migration accepts at least as much as single-machine feasibility
        # would on this crafted stream.
        jobs = [Job(0, 3, 4), Job(0, 3, 4), Job(0, 2, 8)]
        inst = Instance(jobs, machines=2, epsilon=0.3)
        out = MigrationGreedyScheduler().run(inst)
        assert out.accepted_load == pytest.approx(8.0)
