"""Unit tests for the DasGupta–Palis preemptive baseline."""

import pytest

from repro.baselines.dasgupta_palis import DasGuptaPalisPolicy
from repro.engine.preemptive import simulate_preemptive
from repro.model.instance import Instance
from repro.model.job import Job, tight_deadline
from repro.workloads import random_instance


class TestAdmission:
    def test_accepts_feasible(self):
        inst = Instance([Job(0, 1, 3), Job(0, 1, 3)], machines=1, epsilon=1.0)
        out = simulate_preemptive(DasGuptaPalisPolicy(), inst)
        assert len(out.accepted_ids) == 2

    def test_rejects_infeasible(self):
        jobs = [Job(0, 1, 1.2), Job(0, 1, 1.2), Job(0, 1, 1.2)]
        inst = Instance(jobs, machines=2, epsilon=0.2)
        out = simulate_preemptive(DasGuptaPalisPolicy(), inst)
        assert len(out.accepted_ids) == 2

    def test_preemption_beats_nonpreemptive_greedy(self):
        # A long job then an urgent short one: preemptive accepts both on a
        # single machine (preempt, run short, resume); non-preemptive can't.
        eps = 1.0
        jobs = [
            Job(0.0, 4.0, 8.0),
            Job(1.0, 1.0, 2.0 + 1.0),  # needs [1, 3); preempting fits it
        ]
        inst = Instance(jobs, machines=1, epsilon=eps)
        out = simulate_preemptive(DasGuptaPalisPolicy(), inst)
        assert out.accepted_ids == {0, 1}
        out.audit()

    def test_never_misses_deadlines_random(self):
        inst = random_instance(80, 2, 0.1, seed=21)
        out = simulate_preemptive(DasGuptaPalisPolicy(), inst)
        out.audit()


class TestPlacement:
    def test_best_fit_default(self):
        policy = DasGuptaPalisPolicy()
        assert policy.placement == "best-fit"
        assert policy.name == "dasgupta-palis"

    def test_least_loaded_variant_name(self):
        assert "least-loaded" in DasGuptaPalisPolicy(placement="least-loaded").name

    def test_invalid_placement(self):
        with pytest.raises(ValueError):
            DasGuptaPalisPolicy(placement="nope")  # type: ignore[arg-type]

    def test_best_fit_prefers_loaded_feasible_machine(self):
        jobs = [
            Job(0.0, 2.0, tight_deadline(0.0, 2.0, 5.0)),  # machine A
            Job(0.0, 6.0, 30.0),  # both feasible; best-fit -> machine with load
        ]
        inst = Instance(jobs, machines=2, epsilon=1.0)
        policy = DasGuptaPalisPolicy()
        out = simulate_preemptive(policy, inst)
        assert len(out.accepted_ids) == 2
