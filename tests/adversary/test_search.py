"""Tests for the falsification search harness."""

import pytest

from repro.adversary.search import SearchResult, falsify
from repro.core.guarantees import greedy_bound, theorem2_bound


class TestFalsify:
    def test_returns_valid_instance_and_ratio(self):
        r = falsify("greedy", machines=2, epsilon=0.3, budget=20, seed=0)
        assert isinstance(r, SearchResult)
        r.best_instance.validate()
        assert r.best_ratio >= 1.0 - 1e-9
        assert r.evaluations <= 20

    def test_deterministic_given_seed(self):
        a = falsify("greedy", machines=1, epsilon=0.2, budget=25, seed=3)
        b = falsify("greedy", machines=1, epsilon=0.2, budget=25, seed=3)
        assert a.best_ratio == b.best_ratio

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            falsify("greedy", machines=1, epsilon=0.2, budget=0)

    def test_more_budget_never_worse(self):
        small = falsify("greedy", machines=1, epsilon=0.1, budget=10, seed=5)
        # Same seed stream prefix: the incumbent can only improve.
        large = falsify("greedy", machines=1, epsilon=0.1, budget=60, seed=5)
        assert large.best_ratio >= small.best_ratio - 1e-9

    def test_mutations_preserve_slack(self):
        r = falsify("threshold", machines=2, epsilon=0.25, budget=40, seed=7)
        for job in r.best_instance:
            assert job.satisfies_slack(0.25)

    def test_search_finds_nontrivial_hardness(self):
        # Against the single-machine 2 + 1/eps world the blind search should
        # find well above trivial (>= 2x) hardness with a modest budget.
        r = falsify("greedy", machines=1, epsilon=0.1, budget=200, n_jobs=6, seed=1)
        assert r.best_ratio > 2.0


class TestNeverExceedsGuarantees:
    """The falsifier is the empirical side of the theorems: it must fail."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_threshold_never_beyond_theorem2(self, seed):
        m, eps = 2, 0.2
        r = falsify("threshold", machines=m, epsilon=eps, budget=80, seed=seed)
        assert r.best_ratio <= theorem2_bound(eps, m) + 1e-6

    @pytest.mark.parametrize("seed", [0, 1])
    def test_greedy_never_beyond_its_bound(self, seed):
        m, eps = 1, 0.25
        r = falsify("greedy", machines=m, epsilon=eps, budget=80, seed=seed)
        assert r.best_ratio <= greedy_bound(eps, m) + 1e-6
