"""Tests for the Goldwasser two-job warm-up adversary."""

import math

import pytest

from repro.adversary.single_machine import GoldwasserTwoJobAdversary
from repro.baselines.greedy import GreedyPolicy
from repro.core.threshold import ThresholdPolicy
from repro.engine.policy import Decision, OnlinePolicy
from repro.engine.simulator import simulate_source


class RejectAll(OnlinePolicy):
    name = "reject-all"

    def on_submission(self, job, t, machines):
        return Decision.reject()


class TestConstruction:
    def test_killer_size(self):
        adv = GoldwasserTwoJobAdversary(epsilon=0.1, gap=1e-6)
        assert adv.killer_p == pytest.approx(10.0, abs=1e-5)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            GoldwasserTwoJobAdversary(epsilon=0.0)
        with pytest.raises(ValueError):
            GoldwasserTwoJobAdversary(epsilon=1.5)

    def test_invalid_gap(self):
        with pytest.raises(ValueError):
            GoldwasserTwoJobAdversary(epsilon=0.5, gap=0.0)


class TestGame:
    def test_greedy_forced_to_1_plus_inv_eps(self):
        eps = 0.1
        adv = GoldwasserTwoJobAdversary(epsilon=eps)
        schedule = simulate_source(GreedyPolicy(), adv)
        assert adv.j1_accepted is True
        assert adv.killer_accepted is False
        assert adv.forced_ratio() == pytest.approx(1.0 + 1.0 / eps, rel=1e-4)
        assert len(schedule.instance) == 2

    def test_threshold_also_forced(self):
        eps = 0.25
        adv = GoldwasserTwoJobAdversary(epsilon=eps)
        simulate_source(ThresholdPolicy(), adv)
        assert adv.forced_ratio() >= 1.0 + 1.0 / eps - 1e-3

    def test_reject_all_unbounded(self):
        adv = GoldwasserTwoJobAdversary(epsilon=0.5)
        schedule = simulate_source(RejectAll(), adv)
        assert math.isinf(adv.forced_ratio())
        assert len(schedule.instance) == 1  # no killer needed

    def test_jobs_have_tight_slack(self):
        eps = 0.3
        adv = GoldwasserTwoJobAdversary(epsilon=eps)
        schedule = simulate_source(GreedyPolicy(), adv)
        for job in schedule.instance:
            assert job.has_tight_slack(eps)
