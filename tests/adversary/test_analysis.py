"""Tests for the Fig. 2 decision-tree enumeration and Fig. 3 schedules."""

import pytest

from repro.adversary.analysis import (
    enumerate_decision_tree,
    red_path_schedules,
    render_decision_tree,
)
from repro.core.params import c_bound, corner_values, threshold_parameters


class TestEnumeration:
    def test_leaf_count_m3_phase2(self):
        # m = 3, k = 2: plans are u=1 (stop, u<k), u=2 with h in {2,3},
        # u=3 with h = 3 -> 4 leaves.
        outs = enumerate_decision_tree(3, 0.2)
        assert threshold_parameters(0.2, 3).k == 2
        assert len(outs) == 4
        assert {(o.u, o.h) for o in outs} == {(1, None), (2, 2), (2, 3), (3, 3)}

    def test_every_leaf_forces_at_least_c(self):
        eps, m = 0.2, 3
        target = c_bound(eps, m)
        for o in enumerate_decision_tree(m, eps):
            assert o.forced_ratio >= target * (1.0 - 5e-3), (o.u, o.h)

    def test_u_equals_k_leaves_are_tight(self):
        # Eq. (5): for u = k every phase-3 stopping point gives exactly c.
        eps, m = 0.2, 3
        target = c_bound(eps, m)
        k = threshold_parameters(eps, m).k
        tight = [o for o in enumerate_decision_tree(m, eps) if o.u == k]
        assert tight
        for o in tight:
            assert o.forced_ratio == pytest.approx(target, rel=5e-3)

    def test_m2_both_phases(self):
        for eps in [0.1, 0.5]:
            outs = enumerate_decision_tree(2, eps)
            target = c_bound(eps, 2)
            assert min(o.forced_ratio for o in outs) >= target * (1 - 5e-3)

    def test_render_mentions_all_leaves(self):
        outs = enumerate_decision_tree(3, 0.2)
        art = render_decision_tree(outs)
        assert art.count("ratio=") == len(outs)
        assert "phase 2 stops" in art


class TestRedPath:
    def test_red_path_runs_and_renders(self):
        # Fig. 2/3 setting: m = 3, eps in [eps_{1,3}, eps_{2,3}).
        corners = corner_values(3)
        eps = 0.2
        assert corners[1] <= eps < corners[2]
        result, gantt = red_path_schedules(m=3, epsilon=eps)
        assert result.summary["u"] == 2
        assert result.summary["final_h"] == 3
        assert gantt.count("\n") == 2  # three machine rows
        # J1 started at t >= 1 as in Fig. 3.
        assert result.summary["t"] >= 1.0

    def test_red_path_ratio_matches_c(self):
        result, _ = red_path_schedules(m=3, epsilon=0.2)
        assert result.forced_ratio == pytest.approx(c_bound(0.2, 3), rel=5e-3)
