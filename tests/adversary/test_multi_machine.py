"""Tests for the Theorem-1 adversary: protocol validity and forced ratios."""

import math

import pytest

from repro.adversary.base import duel
from repro.adversary.multi_machine import ThreePhaseAdversary
from repro.baselines.greedy import GreedyPolicy
from repro.baselines.lee import LeeStylePolicy
from repro.core.params import c_bound
from repro.core.threshold import ThresholdPolicy
from repro.engine.policy import Decision, OnlinePolicy


class RejectAll(OnlinePolicy):
    name = "reject-all"

    def on_submission(self, job, t, machines):
        return Decision.reject()


class TestProtocolValidity:
    @pytest.mark.parametrize("m,eps", [(1, 0.1), (2, 0.3), (3, 0.2), (4, 0.05)])
    def test_emitted_jobs_satisfy_slack(self, m, eps):
        result = duel(ThresholdPolicy(), m=m, epsilon=eps)
        for job in result.schedule.instance:
            assert job.satisfies_slack(eps), job

    def test_rejecting_j1_gives_unbounded_ratio(self):
        result = duel(RejectAll(), m=2, epsilon=0.3)
        assert result.unbounded
        assert math.isinf(result.forced_ratio)
        assert len(result.schedule.instance) == 1

    def test_schedule_is_audited(self):
        result = duel(ThresholdPolicy(), m=3, epsilon=0.2)
        result.schedule.audit()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ThreePhaseAdversary(m=0, epsilon=0.5)
        with pytest.raises(ValueError):
            ThreePhaseAdversary(m=2, epsilon=0.5, beta=2.0)

    def test_summary_fields(self):
        result = duel(ThresholdPolicy(), m=2, epsilon=0.3)
        s = result.summary
        assert s["m"] == 2 and s["j1_accepted"] is True
        assert s["u"] is not None


class TestConstructiveOptimumCertified:
    @pytest.mark.parametrize(
        "m,eps", [(1, 0.1), (1, 0.5), (2, 0.1), (2, 0.5), (3, 0.2), (3, 0.05)]
    )
    def test_exact_opt_matches_constructive(self, m, eps):
        result = duel(ThresholdPolicy(), m=m, epsilon=eps, verify_opt=True)
        if result.exact_opt is not None:
            # The constructive optimum never exceeds the true optimum, and
            # for these games it is tight.
            assert result.constructive_opt <= result.exact_opt + 1e-6
            assert result.constructive_opt == pytest.approx(result.exact_opt, rel=1e-6)

    def test_flow_bound_dominates_constructive(self):
        result = duel(GreedyPolicy(), m=2, epsilon=0.2, verify_opt=True)
        assert result.flow_opt_bound >= result.constructive_opt - 1e-6


class TestForcedRatios:
    @pytest.mark.parametrize(
        "m,eps",
        [(1, 0.05), (1, 0.3), (2, 0.1), (2, 0.5), (3, 0.05), (3, 0.2), (3, 0.8), (4, 0.1)],
    )
    def test_threshold_forced_to_approximately_c(self, m, eps):
        result = duel(ThresholdPolicy(), m=m, epsilon=eps)
        target = c_bound(eps, m)
        # beta-discretisation keeps the measured ratio within a whisker of
        # the tight value; Theorem 2 caps it from above (+0.164 for k >= 4).
        assert result.forced_ratio >= target * (1.0 - 5e-3)
        assert result.forced_ratio <= target + 0.165 + 1e-6

    @pytest.mark.parametrize("m,eps", [(2, 0.1), (3, 0.2), (4, 0.1)])
    def test_baselines_forced_at_least_c(self, m, eps):
        target = c_bound(eps, m)
        for policy in [GreedyPolicy(), LeeStylePolicy()]:
            result = duel(policy, m=m, epsilon=eps)
            assert result.forced_ratio >= target * (1.0 - 5e-3), policy.name

    def test_greedy_forced_to_roughly_its_own_bound(self):
        # Greedy's guarantee is 2 + 1/eps; the adversary should come close
        # on small slack where greedy over-commits.
        eps, m = 0.1, 2
        result = duel(GreedyPolicy(), m=m, epsilon=eps)
        assert result.forced_ratio >= 0.9 * (2.0 + 1.0 / eps)

    def test_smaller_beta_tightens_ratio(self):
        eps, m = 0.2, 3
        loose = duel(ThresholdPolicy(), m=m, epsilon=eps, beta=1e-2)
        tight = duel(ThresholdPolicy(), m=m, epsilon=eps, beta=1e-5)
        target = c_bound(eps, m)
        assert abs(tight.forced_ratio - target) <= abs(loose.forced_ratio - target) + 1e-9

    def test_ratio_vs_target_close_to_one_for_threshold(self):
        result = duel(ThresholdPolicy(), m=3, epsilon=0.2)
        assert result.ratio_vs_target() == pytest.approx(1.0, abs=0.05)


class TestGamePhases:
    def test_threshold_m1_small_eps_ends_immediately(self):
        # k = 1 and the threshold rejects all phase-2 jobs: u = 1.
        result = duel(ThresholdPolicy(), m=1, epsilon=0.1)
        assert result.summary["u"] == 1
        assert result.summary["final_h"] == 1

    def test_phase3_subphases_progress_with_k(self):
        # For m = 3, eps in phase k = 2 the threshold accepts one unit job
        # before phase 2 stops.
        result = duel(ThresholdPolicy(), m=3, epsilon=0.2)
        assert result.summary["u"] == 2
        assert len(result.summary["accepted_p2"]) == 1

    def test_all_p2_processing_near_one(self):
        result = duel(GreedyPolicy(), m=3, epsilon=0.2)
        for p in result.summary["accepted_p2"]:
            assert 0.99 < p < 1.0
