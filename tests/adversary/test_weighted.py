"""Tests for the weighted-objective escalation adversary."""

import math

import pytest

from repro.adversary.weighted import (
    WeightedEscalationAdversary,
    weighted_duel,
)
from repro.baselines.greedy import GreedyPolicy
from repro.core.threshold import ThresholdPolicy
from repro.engine.policy import Decision, OnlinePolicy
from repro.engine.simulator import simulate_source


class RejectAll(OnlinePolicy):
    name = "reject-all"

    def on_submission(self, job, t, machines):
        return Decision.reject()


class AcceptWhateverFits(OnlinePolicy):
    name = "accept-fits"

    def on_submission(self, job, t, machines):
        for ms in machines:
            if ms.fits(job, t):
                return Decision.accept(machine=ms.index, start=ms.append_start(job, t))
        return Decision.reject()


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedEscalationAdversary(0, 0.5)
        with pytest.raises(ValueError):
            WeightedEscalationAdversary(2, 1.5)
        with pytest.raises(ValueError):
            WeightedEscalationAdversary(2, 0.5, escalation=1.0)

    def test_jobs_have_tight_slack_and_weights(self):
        adv = WeightedEscalationAdversary(2, 0.3, escalation=7.0)
        schedule = simulate_source(AcceptWhateverFits(), adv)
        for job in schedule.instance:
            assert job.has_tight_slack(0.3)
            assert job.weight == pytest.approx(7.0 ** job.tag("level"))

    def test_one_job_per_machine_enforced(self):
        adv = WeightedEscalationAdversary(3, 0.2)
        schedule = simulate_source(AcceptWhateverFits(), adv)
        machines_used = {a.machine for a in schedule.assignments.values()}
        assert len(machines_used) == schedule.accepted_count


class TestForcedRatios:
    def test_reject_all_unbounded(self):
        result = weighted_duel(RejectAll(), m=2, epsilon=0.5)
        assert math.isinf(result.forced_ratio)

    @pytest.mark.parametrize("m,eps", [(1, 0.5), (2, 0.2), (3, 1.0)])
    @pytest.mark.parametrize("escalation", [10.0, 100.0])
    def test_every_policy_forced_to_R(self, m, eps, escalation):
        for policy in (ThresholdPolicy(), GreedyPolicy(), AcceptWhateverFits()):
            result = weighted_duel(policy, m=m, epsilon=eps, escalation=escalation)
            assert result.forced_ratio >= 0.99 * escalation, policy.name

    def test_full_acceptance_gives_exactly_R(self):
        # Greedy accepts levels 0..m-1; OPT takes levels 1..m: ratio = R.
        m, R = 3, 10.0
        result = weighted_duel(GreedyPolicy(), m=m, epsilon=0.2, escalation=R)
        assert result.levels_accepted == m
        assert result.forced_ratio == pytest.approx(R)

    def test_unbounded_in_escalation(self):
        ratios = [
            weighted_duel(GreedyPolicy(), m=2, epsilon=0.5, escalation=R).forced_ratio
            for R in (10.0, 100.0, 1000.0)
        ]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_slack_does_not_help(self):
        # Even maximal slack eps = 1 cannot bound the weighted ratio.
        r_tight = weighted_duel(GreedyPolicy(), m=2, epsilon=0.1, escalation=50.0)
        r_loose = weighted_duel(GreedyPolicy(), m=2, epsilon=1.0, escalation=50.0)
        assert r_loose.forced_ratio >= 0.99 * 50.0
        assert r_tight.forced_ratio >= 0.99 * 50.0


class TestOptimumAccounting:
    def test_constructive_optimum_is_top_m(self):
        adv = WeightedEscalationAdversary(2, 0.5, escalation=10.0)
        simulate_source(AcceptWhateverFits(), adv)
        weights = sorted(adv.all_weights, reverse=True)
        assert adv.constructive_optimum() == pytest.approx(sum(weights[:2]))

    def test_algorithm_value_matches_schedule(self):
        adv = WeightedEscalationAdversary(2, 0.5, escalation=10.0)
        schedule = simulate_source(AcceptWhateverFits(), adv)
        assert adv.algorithm_value() == pytest.approx(schedule.accepted_value)
