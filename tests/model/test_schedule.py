"""Unit tests for schedules: objective, audit, rendering."""

import pytest

from repro.model.instance import Instance
from repro.model.job import Job
from repro.model.schedule import Assignment, Schedule, ScheduleViolation


@pytest.fixture
def inst() -> Instance:
    jobs = [Job(0.0, 1.0, 4.0), Job(0.0, 2.0, 6.0), Job(1.0, 1.0, 5.0)]
    return Instance(jobs, machines=2, epsilon=0.5)


def _schedule(inst, accepted: dict[int, tuple[int, float]]) -> Schedule:
    s = Schedule(instance=inst, algorithm="test")
    for jid, (m, start) in accepted.items():
        s.assignments[jid] = Assignment(jid, m, start)
    s.rejected = {j.job_id for j in inst} - set(accepted)
    return s


class TestObjective:
    def test_accepted_load(self, inst):
        s = _schedule(inst, {0: (0, 0.0), 1: (1, 0.0)})
        assert s.accepted_load == pytest.approx(3.0)

    def test_rejected_load(self, inst):
        s = _schedule(inst, {0: (0, 0.0)})
        assert s.rejected_load == pytest.approx(3.0)

    def test_counts_and_rate(self, inst):
        s = _schedule(inst, {0: (0, 0.0)})
        assert s.accepted_count == 1
        assert s.acceptance_rate() == pytest.approx(1 / 3)

    def test_machine_loads(self, inst):
        s = _schedule(inst, {0: (0, 0.0), 1: (1, 0.0), 2: (0, 1.0)})
        assert s.machine_loads() == [2.0, 2.0]

    def test_makespan(self, inst):
        s = _schedule(inst, {1: (1, 2.0)})
        assert s.makespan() == 4.0

    def test_accepted_value_defaults_to_load(self, inst):
        s = _schedule(inst, {0: (0, 0.0), 1: (1, 0.0)})
        assert s.accepted_value == s.accepted_load

    def test_accepted_value_uses_weights(self):
        jobs = [Job(0.0, 1.0, 4.0, weight=10.0), Job(0.0, 2.0, 6.0)]
        winst = Instance(jobs, machines=2, epsilon=0.5)
        s = _schedule(winst, {0: (0, 0.0), 1: (1, 0.0)})
        assert s.accepted_value == pytest.approx(12.0)
        assert s.accepted_load == pytest.approx(3.0)


class TestAudit:
    def test_valid_schedule_passes(self, inst):
        s = _schedule(inst, {0: (0, 0.0), 1: (1, 0.0), 2: (0, 1.5)})
        s.audit()
        assert s.is_valid()

    def test_missing_decision_fails(self, inst):
        s = _schedule(inst, {0: (0, 0.0)})
        s.rejected.discard(2)
        with pytest.raises(ScheduleViolation, match="coverage"):
            s.audit()

    def test_double_decision_fails(self, inst):
        s = _schedule(inst, {0: (0, 0.0)})
        s.rejected.add(0)
        with pytest.raises(ScheduleViolation, match="both"):
            s.audit()

    def test_bad_machine_index_fails(self, inst):
        s = _schedule(inst, {0: (5, 0.0)})
        with pytest.raises(ScheduleViolation, match="machine index"):
            s.audit()

    def test_start_before_release_fails(self, inst):
        s = _schedule(inst, {2: (0, 0.5)})  # release is 1.0
        with pytest.raises(ScheduleViolation, match="release"):
            s.audit()

    def test_deadline_miss_fails(self, inst):
        s = _schedule(inst, {0: (0, 3.5)})  # completes 4.5 > d=4
        with pytest.raises(ScheduleViolation, match="deadline"):
            s.audit()

    def test_overlap_fails(self, inst):
        s = _schedule(inst, {0: (0, 0.0), 1: (0, 0.5)})
        with pytest.raises(ScheduleViolation, match="overlaps"):
            s.audit()

    def test_is_valid_false_on_violation(self, inst):
        s = _schedule(inst, {0: (0, 3.5)})
        assert not s.is_valid()


class TestConstructionAndRendering:
    def test_from_decisions(self, inst):
        s = Schedule.from_decisions(
            inst,
            [(0, Assignment(0, 0, 0.0)), (1, None), (2, Assignment(2, 1, 1.0))],
            algorithm="x",
        )
        assert s.accepted_count == 2 and 1 in s.rejected

    def test_machine_timeline_sorted(self, inst):
        s = _schedule(inst, {0: (0, 2.0), 2: (0, 1.0)})
        timeline = s.machine_timeline(0)
        assert [j.job_id for j, _ in timeline] == [2, 0]

    def test_gantt_renders_all_machines(self, inst):
        s = _schedule(inst, {0: (0, 0.0), 1: (1, 0.0)})
        art = s.gantt_ascii(width=40)
        lines = art.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("m0:") and lines[1].startswith("m1:")
        assert "0" in lines[0] and "1" in lines[1]

    def test_is_accepted(self, inst):
        s = _schedule(inst, {0: (0, 0.0)})
        assert s.is_accepted(0) and not s.is_accepted(1)


class TestSerialization:
    def _real_schedule(self):
        from repro.core.threshold import ThresholdPolicy
        from repro.engine.simulator import simulate
        from repro.workloads import random_instance

        inst = random_instance(15, 2, 0.25, seed=6)
        return simulate(ThresholdPolicy(), inst)

    def test_json_roundtrip(self):
        s = self._real_schedule()
        back = Schedule.from_json(s.to_json())
        assert back.accepted_load == pytest.approx(s.accepted_load)
        assert back.rejected == s.rejected
        assert set(back.assignments) == set(s.assignments)
        for jid, a in s.assignments.items():
            b = back.assignments[jid]
            assert (b.machine, b.start) == (a.machine, a.start)

    def test_from_dict_reaudits(self):
        s = self._real_schedule()
        data = s.to_dict()
        # Corrupt an assignment: start after the deadline.
        data["assignments"][0]["start"] = 1e9
        with pytest.raises(ScheduleViolation):
            Schedule.from_dict(data)

    def test_weights_survive_roundtrip(self):
        jobs = [Job(0.0, 1.0, 5.0, weight=4.0), Job(0.0, 2.0, 9.0)]
        winst = Instance(jobs, machines=1, epsilon=0.5)
        s = Schedule(instance=winst, algorithm="x")
        s.assignments[0] = Assignment(0, 0, 0.0)
        s.assignments[1] = Assignment(1, 0, 1.0)
        back = Schedule.from_json(s.to_json())
        assert back.accepted_value == pytest.approx(6.0)


class TestDotRendering:
    def test_fig2_dot_structure(self):
        from repro.adversary.analysis import (
            enumerate_decision_tree,
            render_decision_tree_dot,
        )

        outcomes = enumerate_decision_tree(3, 0.2)
        dot = render_decision_tree_dot(outcomes, title="t")
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        # One leaf per outcome, one u-node per distinct u.
        assert dot.count("shape=ellipse") == len(outcomes)
        assert dot.count("phase 2 stops") == len({o.u for o in outcomes})
        assert "ratio=" in dot
