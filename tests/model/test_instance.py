"""Unit tests for instances: validation, stats, serialization."""

import numpy as np
import pytest

from repro.model.instance import Instance, instance_from_arrays
from repro.model.job import Job


def _jobs():
    return [Job(0.0, 1.0, 3.0), Job(1.0, 2.0, 7.0), Job(2.0, 0.5, 4.0)]


class TestValidation:
    def test_valid_instance(self):
        inst = Instance(_jobs(), machines=2, epsilon=0.5)
        assert len(inst) == 3

    def test_ids_assigned_positionally(self):
        inst = Instance(_jobs(), machines=2, epsilon=0.5)
        assert [j.job_id for j in inst] == [0, 1, 2]

    def test_rejects_zero_machines(self):
        with pytest.raises(ValueError):
            Instance(_jobs(), machines=0, epsilon=0.5)

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(ValueError):
            Instance(_jobs(), machines=1, epsilon=0.0)

    def test_rejects_out_of_order_releases(self):
        jobs = [Job(5.0, 1.0, 10.0), Job(1.0, 1.0, 10.0)]
        with pytest.raises(ValueError, match="submission order"):
            Instance(jobs, machines=1, epsilon=0.5)

    def test_rejects_slack_violation(self):
        jobs = [Job(0.0, 2.0, 2.2)]  # slack 0.1 < declared 0.5
        with pytest.raises(ValueError, match="slack"):
            Instance(jobs, machines=1, epsilon=0.5)

    def test_validate_false_skips_checks(self):
        jobs = [Job(0.0, 2.0, 2.2)]
        inst = Instance(jobs, machines=1, epsilon=0.5, validate=False)
        assert len(inst) == 1


class TestStats:
    def test_total_load(self):
        assert Instance(_jobs(), 2, 0.5).total_load == pytest.approx(3.5)

    def test_horizon(self):
        assert Instance(_jobs(), 2, 0.5).horizon == 7.0

    def test_min_slack(self):
        inst = Instance(_jobs(), 2, 0.5)
        assert inst.min_slack == pytest.approx(min(j.slack() for j in _jobs()))

    def test_empty_instance_stats(self):
        inst = Instance([], machines=1, epsilon=0.5)
        assert inst.total_load == 0.0
        assert inst.horizon == 0.0
        assert inst.min_slack == float("inf")

    def test_arrays(self):
        inst = Instance(_jobs(), 2, 0.5)
        assert np.allclose(inst.releases(), [0.0, 1.0, 2.0])
        assert np.allclose(inst.processings(), [1.0, 2.0, 0.5])
        assert np.allclose(inst.deadlines(), [3.0, 7.0, 4.0])

    def test_describe_keys(self):
        d = Instance(_jobs(), 2, 0.5, name="x").describe()
        assert d["name"] == "x" and d["jobs"] == 3 and d["machines"] == 2


class TestDerivedInstances:
    def test_with_machines(self):
        inst = Instance(_jobs(), 2, 0.5).with_machines(4)
        assert inst.machines == 4 and len(inst) == 3

    def test_restricted_to(self):
        inst = Instance(_jobs(), 2, 0.5)
        sub = inst.restricted_to([0, 2])
        assert len(sub) == 2
        assert [j.tag("origin_id") for j in sub] == [0, 2]

    def test_sorted_by_release_stable(self):
        inst = Instance(_jobs(), 2, 0.5).sorted_by_release()
        assert list(inst.releases()) == sorted(inst.releases())


class TestSerialization:
    def test_dict_roundtrip(self):
        inst = Instance(_jobs(), 2, 0.5, name="rt", meta={"k": 1})
        back = Instance.from_dict(inst.to_dict())
        assert back.machines == 2 and back.epsilon == 0.5 and back.name == "rt"
        assert [j.processing for j in back] == [j.processing for j in inst]

    def test_json_roundtrip(self):
        inst = Instance(_jobs(), 3, 0.25)
        back = Instance.from_json(inst.to_json())
        assert len(back) == len(inst)
        assert back.machines == 3


class TestFromArrays:
    def test_basic(self):
        inst = instance_from_arrays([0, 1], [1, 1], [2, 3], machines=2, epsilon=0.5)
        assert len(inst) == 2

    def test_epsilon_inferred(self):
        inst = instance_from_arrays([0.0], [1.0], [1.8], machines=1)
        assert inst.epsilon == pytest.approx(0.8)

    def test_epsilon_inferred_clipped_to_one(self):
        inst = instance_from_arrays([0.0], [1.0], [5.0], machines=1)
        assert inst.epsilon == 1.0

    def test_sorts_by_release(self):
        inst = instance_from_arrays([3, 0], [1, 1], [10, 9], machines=1, epsilon=0.5)
        assert list(inst.releases()) == [0.0, 3.0]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            instance_from_arrays([0], [1, 2], [3], machines=1, epsilon=0.5)

    def test_empty_needs_epsilon(self):
        with pytest.raises(ValueError):
            instance_from_arrays([], [], [], machines=1)
