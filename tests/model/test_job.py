"""Unit tests for the job model and slack condition."""

import pytest

from repro.model.job import Job, slack_of, tight_deadline


class TestConstruction:
    def test_basic_fields(self):
        j = Job(1.0, 2.0, 6.0, job_id=3)
        assert (j.release, j.processing, j.deadline, j.job_id) == (1.0, 2.0, 6.0, 3)

    def test_rejects_nonpositive_processing(self):
        with pytest.raises(ValueError):
            Job(0.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            Job(0.0, -1.0, 1.0)

    def test_rejects_negative_release(self):
        with pytest.raises(ValueError):
            Job(-0.1, 1.0, 2.0)

    def test_rejects_window_too_small(self):
        with pytest.raises(ValueError):
            Job(0.0, 2.0, 1.5)

    def test_immutable(self):
        j = Job(0.0, 1.0, 2.0)
        with pytest.raises(AttributeError):
            j.processing = 5.0  # type: ignore[misc]

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_rejects_nonfinite_fields(self, bad):
        with pytest.raises(ValueError, match="finite"):
            Job(bad, 1.0, 2.0)
        with pytest.raises(ValueError, match="finite"):
            Job(0.0, bad, 2.0)
        with pytest.raises(ValueError, match="finite"):
            Job(0.0, 1.0, bad)

    def test_rejects_nonfinite_weight(self):
        with pytest.raises(ValueError, match="finite"):
            Job(0.0, 1.0, 2.0, weight=float("nan"))


class TestDerived:
    def test_value_equals_processing(self):
        assert Job(0.0, 2.5, 10.0).value == 2.5

    def test_latest_start(self):
        assert Job(1.0, 2.0, 6.0).latest_start == 4.0

    def test_window_and_laxity(self):
        j = Job(1.0, 2.0, 6.0)
        assert j.window == 5.0
        assert j.laxity == 3.0

    def test_slack_definition(self):
        # d - r = 5, p = 2 -> slack = 5/2 - 1 = 1.5
        assert Job(1.0, 2.0, 6.0).slack() == pytest.approx(1.5)

    def test_slack_of_alias(self):
        j = Job(0.0, 1.0, 3.0)
        assert slack_of(j) == j.slack()


class TestSlackCondition:
    def test_satisfies_loose(self):
        assert Job(0.0, 1.0, 3.0).satisfies_slack(0.5)

    def test_satisfies_exactly(self):
        j = Job(0.0, 2.0, 3.0)  # d = (1+0.5)*2
        assert j.satisfies_slack(0.5)
        assert j.has_tight_slack(0.5)

    def test_violates(self):
        assert not Job(0.0, 2.0, 2.5).satisfies_slack(0.5)

    def test_tight_deadline_roundtrip(self):
        d = tight_deadline(2.0, 3.0, 0.25)
        assert d == pytest.approx(2.0 + 1.25 * 3.0)
        assert Job(2.0, 3.0, d).has_tight_slack(0.25)

    def test_tight_deadline_rejects_bad_processing(self):
        with pytest.raises(ValueError):
            tight_deadline(0.0, 0.0, 0.5)


class TestFeasibleStart:
    def test_at_release(self):
        assert Job(1.0, 2.0, 6.0).feasible_start(1.0)

    def test_before_release(self):
        assert not Job(1.0, 2.0, 6.0).feasible_start(0.5)

    def test_at_latest_start(self):
        assert Job(1.0, 2.0, 6.0).feasible_start(4.0)

    def test_after_latest_start(self):
        assert not Job(1.0, 2.0, 6.0).feasible_start(4.5)


class TestWeights:
    def test_default_value_is_processing(self):
        assert Job(0.0, 2.5, 10.0).value == 2.5

    def test_explicit_weight_overrides_value(self):
        assert Job(0.0, 2.5, 10.0, weight=7.0).value == 7.0

    def test_zero_weight_allowed(self):
        assert Job(0.0, 1.0, 2.0, weight=0.0).value == 0.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            Job(0.0, 1.0, 2.0, weight=-1.0)

    def test_weight_survives_with_id(self):
        assert Job(0.0, 1.0, 2.0, weight=3.0).with_id(5).weight == 3.0


class TestTagsAndIds:
    def test_with_id_copies(self):
        j = Job(0.0, 1.0, 2.0)
        j2 = j.with_id(9)
        assert j2.job_id == 9 and j.job_id == -1

    def test_with_tags_merges(self):
        j = Job(0.0, 1.0, 2.0).with_tags(a=1).with_tags(b=2)
        assert j.tag("a") == 1 and j.tag("b") == 2

    def test_tag_default(self):
        assert Job(0.0, 1.0, 2.0).tag("missing", "x") == "x"

    def test_tags_do_not_affect_equality(self):
        assert Job(0.0, 1.0, 2.0).with_tags(a=1) == Job(0.0, 1.0, 2.0).with_tags(a=2)
