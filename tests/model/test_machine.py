"""Unit tests for non-preemptive machine state."""

import pytest

from repro.model.job import Job
from repro.model.machine import MachineState


class TestCommit:
    def test_commit_and_query(self):
        ms = MachineState(0)
        c = ms.commit(Job(0.0, 2.0, 5.0, job_id=1), start=0.0)
        assert c.end == 2.0
        assert len(ms) == 1

    def test_rejects_overlap(self):
        ms = MachineState(0)
        ms.commit(Job(0.0, 2.0, 5.0, job_id=1), start=0.0)
        with pytest.raises(ValueError, match="overlaps"):
            ms.commit(Job(0.0, 2.0, 5.0, job_id=2), start=1.0)

    def test_allows_back_to_back(self):
        ms = MachineState(0)
        ms.commit(Job(0.0, 2.0, 5.0, job_id=1), start=0.0)
        ms.commit(Job(0.0, 2.0, 5.0, job_id=2), start=2.0)
        assert ms.last_end() == 4.0

    def test_rejects_infeasible_start(self):
        ms = MachineState(0)
        with pytest.raises(ValueError, match="infeasible"):
            ms.commit(Job(1.0, 2.0, 5.0, job_id=1), start=0.5)  # before release
        with pytest.raises(ValueError, match="infeasible"):
            ms.commit(Job(1.0, 2.0, 5.0, job_id=1), start=4.0)  # misses deadline

    def test_commitments_sorted_by_start(self):
        ms = MachineState(0)
        ms.commit(Job(0.0, 1.0, 20.0, job_id=1), start=5.0)
        ms.commit(Job(0.0, 1.0, 20.0, job_id=2), start=1.0)
        starts = [c.start for c in ms.commitments]
        assert starts == sorted(starts)


class TestOutstanding:
    def test_zero_when_empty(self):
        assert MachineState(0).outstanding(3.0) == 0.0

    def test_full_before_start(self):
        ms = MachineState(0)
        ms.commit(Job(0.0, 2.0, 10.0, job_id=1), start=4.0)
        assert ms.outstanding(0.0) == 2.0

    def test_partial_mid_execution(self):
        ms = MachineState(0)
        ms.commit(Job(0.0, 2.0, 10.0, job_id=1), start=0.0)
        assert ms.outstanding(0.5) == pytest.approx(1.5)

    def test_zero_after_completion(self):
        ms = MachineState(0)
        ms.commit(Job(0.0, 2.0, 10.0, job_id=1), start=0.0)
        assert ms.outstanding(3.0) == 0.0

    def test_sums_multiple_commitments(self):
        ms = MachineState(0)
        ms.commit(Job(0.0, 1.0, 20.0, job_id=1), start=0.0)
        ms.commit(Job(0.0, 2.0, 20.0, job_id=2), start=5.0)
        assert ms.outstanding(0.5) == pytest.approx(0.5 + 2.0)


class TestFrontierAndFits:
    def test_completion_frontier_empty(self):
        assert MachineState(0).completion_frontier(2.0) == 2.0

    def test_completion_frontier_busy(self):
        ms = MachineState(0)
        ms.commit(Job(0.0, 3.0, 10.0, job_id=1), start=1.0)
        assert ms.completion_frontier(0.0) == 4.0
        assert ms.completion_frontier(5.0) == 5.0

    def test_append_start_respects_release(self):
        ms = MachineState(0)
        job = Job(3.0, 1.0, 10.0, job_id=1)
        assert ms.append_start(job, 1.0) == 3.0

    def test_append_start_respects_frontier(self):
        ms = MachineState(0)
        ms.commit(Job(0.0, 4.0, 10.0, job_id=1), start=0.0)
        job = Job(1.0, 1.0, 10.0, job_id=2)
        assert ms.append_start(job, 1.0) == 4.0

    def test_fits_true_false(self):
        ms = MachineState(0)
        ms.commit(Job(0.0, 4.0, 10.0, job_id=1), start=0.0)
        assert ms.fits(Job(0.0, 1.0, 6.0, job_id=2), t=0.0)
        assert not ms.fits(Job(0.0, 3.0, 6.0, job_id=3), t=0.0)

    def test_busy_and_idle(self):
        ms = MachineState(0)
        ms.commit(Job(0.0, 2.0, 10.0, job_id=1), start=1.0)
        assert ms.busy_at(1.5)
        assert not ms.busy_at(0.5)
        assert not ms.is_idle_from(0.0)
        assert ms.is_idle_from(3.5)


class TestFreeIntervals:
    def test_empty_machine_single_gap(self):
        gaps = MachineState(0).free_intervals(0.0, 10.0)
        assert len(gaps) == 1 and gaps[0].length == 10.0

    def test_gaps_around_commitments(self):
        ms = MachineState(0)
        ms.commit(Job(0.0, 2.0, 20.0, job_id=1), start=2.0)
        ms.commit(Job(0.0, 2.0, 20.0, job_id=2), start=7.0)
        gaps = ms.free_intervals(0.0, 10.0)
        assert [(g.start, g.end) for g in gaps] == [(0.0, 2.0), (4.0, 7.0), (9.0, 10.0)]

    def test_committed_load(self):
        ms = MachineState(0)
        ms.commit(Job(0.0, 2.0, 20.0, job_id=1), start=0.0)
        ms.commit(Job(0.0, 3.0, 20.0, job_id=2), start=2.0)
        assert ms.committed_load() == 5.0

    def test_clone_independent(self):
        ms = MachineState(0)
        ms.commit(Job(0.0, 2.0, 20.0, job_id=1), start=0.0)
        clone = ms.clone()
        clone.commit(Job(0.0, 2.0, 20.0, job_id=2), start=2.0)
        assert len(ms) == 1 and len(clone) == 2
