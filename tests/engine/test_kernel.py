"""Unit tests for the shared simulation kernel (events, stats, errors)."""

import pytest

from repro.engine.kernel import (
    EventStream,
    JobFeed,
    SimulationError,
    exhaust,
    replay_events,
)
from repro.engine.admission import AdmissionGreedyPolicy, simulate_admission
from repro.engine.delayed import DelayedGreedyPolicy, simulate_delayed
from repro.engine.penalties import RevocableGreedyPolicy, simulate_with_penalties
from repro.engine.preemptive import simulate_preemptive
from repro.engine.simulator import simulate
from repro.baselines.dasgupta_palis import DasGuptaPalisPolicy
from repro.baselines.greedy import GreedyPolicy
from repro.core.threshold import ThresholdPolicy
from repro.model.instance import Instance
from repro.model.job import Job
from repro.workloads import random_instance


class TestErrorTaxonomy:
    def test_simulation_error_is_both_runtime_and_value_error(self):
        # Backward compatibility: the immediate engine historically raised
        # RuntimeError subclasses, the other engines bare ValueError.
        err = SimulationError("boom", model="immediate", job_id=3, time=1.5)
        assert isinstance(err, RuntimeError)
        assert isinstance(err, ValueError)
        assert err.model == "immediate"
        assert err.job_id == 3
        assert err.time == 1.5

    def test_delayed_policy_bug_raises_simulation_error(self):
        from repro.engine.delayed import DelayedPolicy

        class Lazy(DelayedPolicy):
            name = "lazy"

            def decide(self, t, due, pending, machines):
                return {}

        inst = random_instance(3, 1, 0.2, seed=0)
        with pytest.raises(SimulationError, match="undecided") as exc_info:
            simulate_delayed(Lazy(), inst, 0.1)
        assert exc_info.value.model == "delayed"

    def test_admission_policy_bug_raises_simulation_error(self):
        from repro.engine.admission import AdmissionPolicy

        class Bogus(AdmissionPolicy):
            name = "bogus"

            def choose(self, t, pending):
                return Job(0.0, 1.0, 100.0, job_id=999)

        inst = random_instance(3, 1, 0.5, seed=1)
        with pytest.raises(SimulationError, match="not startable") as exc_info:
            simulate_admission(Bogus(), inst)
        assert exc_info.value.model == "commitment-on-admission"
        assert exc_info.value.job_id == 999

    def test_penalties_policy_bug_raises_simulation_error(self):
        from repro.engine.penalties import PenaltyPolicy

        class Confused(PenaltyPolicy):
            name = "confused"

            def on_submission(self, job, t, plans):
                return None, [12345]

        inst = random_instance(3, 1, 0.2, seed=0)
        with pytest.raises(SimulationError, match="unknown plan"):
            simulate_with_penalties(Confused(), inst, 0.0)

    def test_preemptive_policy_bug_raises_simulation_error(self):
        from repro.engine.preemptive import PreemptivePolicy

        class OutOfRange(PreemptivePolicy):
            name = "oor"

            def on_submission(self, job, t, machines):
                return 99

        inst = random_instance(3, 1, 0.5, seed=2)
        with pytest.raises(SimulationError, match="out of range"):
            simulate_preemptive(OutOfRange(), inst)

    def test_argument_errors_stay_plain_value_errors(self):
        # Caller bugs (bad delta / phi) are not policy bugs and keep the
        # plain ValueError contract.
        inst = random_instance(3, 1, 0.2, seed=0)
        with pytest.raises(ValueError, match="delta"):
            simulate_delayed(DelayedGreedyPolicy(), inst, 5.0)
        with pytest.raises(ValueError, match="non-negative"):
            simulate_with_penalties(RevocableGreedyPolicy(), inst, -1.0)


class TestStats:
    def test_every_model_attaches_stats(self):
        inst = random_instance(30, 2, 0.3, seed=4)
        outcomes = [
            simulate(GreedyPolicy(), inst),
            simulate_delayed(DelayedGreedyPolicy(), inst, 0.1),
            simulate_admission(AdmissionGreedyPolicy(), inst),
            simulate_with_penalties(RevocableGreedyPolicy(), inst, 0.5),
            simulate_preemptive(DasGuptaPalisPolicy(), inst),
        ]
        for outcome in outcomes:
            stats = outcome.meta["stats"]
            assert stats.model == outcome.meta["model"]
            assert stats.decisions == len(inst)
            assert stats.accepted + stats.rejected == stats.decisions
            assert stats.sim_seconds >= 0.0
            assert stats.audit_seconds >= 0.0
            d = stats.as_dict()
            assert d["accepted_load"] == pytest.approx(stats.accepted_load)
            assert d["decisions_per_second"] > 0

    def test_stats_accepted_load_matches_schedule(self):
        inst = random_instance(40, 3, 0.25, seed=5)
        s = simulate(ThresholdPolicy(), inst)
        assert s.meta["stats"].accepted_load == pytest.approx(s.accepted_load)

    def test_penalties_stats_count_revocations(self):
        inst = random_instance(80, 2, 0.2, seed=6)
        out = simulate_with_penalties(RevocableGreedyPolicy(), inst, 0.0)
        assert out.meta["stats"].revoked == len(out.revoked)


class TestEvents:
    def test_events_are_opt_in(self):
        inst = random_instance(10, 2, 0.3, seed=7)
        assert "events" not in simulate(GreedyPolicy(), inst).meta
        s = simulate(GreedyPolicy(), inst, record_events=True)
        assert len(s.meta["events"]) > 0

    def test_decision_events_cover_every_job(self):
        inst = random_instance(25, 2, 0.3, seed=8)
        s = simulate_delayed(DelayedGreedyPolicy(), inst, 0.15, record_events=True)
        decided = {e.job_id for e in s.meta["events"].of_kind("decision")}
        assert decided == {j.job_id for j in inst}

    def test_event_stream_renders(self):
        inst = random_instance(5, 1, 0.3, seed=9)
        s = simulate(GreedyPolicy(), inst, record_events=True)
        text = s.meta["events"].render()
        assert "decision" in text and "t=" in text


class TestReplay:
    @pytest.mark.parametrize(
        "run",
        [
            lambda inst: simulate(GreedyPolicy(), inst, record_events=True),
            lambda inst: simulate(ThresholdPolicy(), inst, record_events=True),
            lambda inst: simulate_delayed(
                DelayedGreedyPolicy(), inst, 0.2, record_events=True
            ),
            lambda inst: simulate_admission(
                AdmissionGreedyPolicy(), inst, record_events=True
            ),
        ],
    )
    def test_replay_reconstructs_schedule(self, run):
        inst = random_instance(40, 3, 0.25, seed=10)
        s = run(inst)
        replayed = replay_events(inst, s.meta["events"])
        assert replayed.assignments == s.assignments
        assert replayed.rejected == s.rejected


class TestHelpers:
    def test_job_feed_peek_pop(self):
        jobs = [Job(0, 1, 10, job_id=0), Job(2, 1, 10, job_id=1)]
        feed = JobFeed(jobs)
        assert feed.peek().job_id == 0
        assert feed.pop().job_id == 0
        assert not feed.exhausted
        assert feed.take_released(5.0) == [jobs[1]]
        assert feed.exhausted and feed.pop() is None

    def test_job_feed_take_released_respects_time(self):
        jobs = [Job(0, 1, 10, job_id=0), Job(5, 1, 10, job_id=1)]
        feed = JobFeed(jobs)
        assert [j.job_id for j in feed.take_released(1.0)] == [0]
        assert feed.peek().job_id == 1

    def test_exhaust_counts_and_limits(self):
        budget = [3]

        def step():
            if budget[0] == 0:
                return False
            budget[0] -= 1
            return True

        assert exhaust(step) == 3
        with pytest.raises(SimulationError, match="limit"):
            exhaust(lambda: True, limit=10)

    def test_event_stream_of_kind(self):
        stream = EventStream()
        stream.emit("decision", 0.0, job_id=1, accepted=True)
        stream.emit("revoke", 1.0, job_id=1)
        assert len(stream.of_kind("decision")) == 1
        assert len(stream.of_kind("revoke")) == 1


class TestModelTags:
    def test_meta_model_is_set_for_all_engines(self):
        inst = Instance([Job(0, 1, 10)], machines=1, epsilon=1.0)
        assert simulate(GreedyPolicy(), inst).meta["model"] == "immediate"
        assert (
            simulate_admission(AdmissionGreedyPolicy(), inst).meta["model"]
            == "commitment-on-admission"
        )
        assert (
            simulate_with_penalties(RevocableGreedyPolicy(), inst, 0.0).meta["model"]
            == "commitment-with-penalties"
        )
        assert (
            simulate_preemptive(DasGuptaPalisPolicy(), inst).meta["model"]
            == "preemptive"
        )
        assert (
            simulate_delayed(DelayedGreedyPolicy(), inst, 0.0).meta["model"]
            == "delayed"
        )
