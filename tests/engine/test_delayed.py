"""Tests for the δ-delayed-commitment engine and policy."""

import pytest

from repro.engine.delayed import (
    DelayedGreedyPolicy,
    DelayedPolicy,
    decision_deadline,
    simulate_delayed,
)
from repro.engine.policy import Decision
from repro.model.instance import Instance
from repro.model.job import Job
from repro.workloads import alternating_instance, random_instance


class TestDecisionDeadline:
    def test_basic(self):
        job = Job(1.0, 2.0, 10.0)
        assert decision_deadline(job, 0.5) == pytest.approx(2.0)

    def test_clipped_to_latest_start(self):
        job = Job(0.0, 2.0, 2.5)  # latest start 0.5
        assert decision_deadline(job, 1.0) == pytest.approx(0.5)

    def test_zero_delta_is_release(self):
        job = Job(3.0, 1.0, 10.0)
        assert decision_deadline(job, 0.0) == 3.0


class TestEngine:
    def test_delta_zero_matches_immediate_greedy_shape(self):
        inst = random_instance(30, 2, 0.2, seed=1)
        s = simulate_delayed(DelayedGreedyPolicy(lookahead=False), inst, 0.0)
        s.audit()
        assert s.accepted_load > 0

    def test_delta_out_of_range(self):
        inst = random_instance(5, 1, 0.2, seed=0)
        with pytest.raises(ValueError, match="delta"):
            simulate_delayed(DelayedGreedyPolicy(), inst, 0.5)
        with pytest.raises(ValueError, match="delta"):
            simulate_delayed(DelayedGreedyPolicy(), inst, -0.1)

    def test_all_jobs_decided(self):
        inst = random_instance(40, 3, 0.3, seed=2)
        s = simulate_delayed(DelayedGreedyPolicy(), inst, 0.15)
        assert len(s.assignments) + len(s.rejected) == len(inst)

    def test_audited_schedule(self):
        inst = random_instance(50, 2, 0.25, seed=3)
        s = simulate_delayed(DelayedGreedyPolicy(), inst, 0.25)
        s.audit()

    def test_policy_must_decide_due_jobs(self):
        class Lazy(DelayedPolicy):
            name = "lazy"

            def decide(self, t, due, pending, machines):
                return {}

        inst = random_instance(3, 1, 0.2, seed=0)
        with pytest.raises(ValueError, match="undecided"):
            simulate_delayed(Lazy(), inst, 0.1)

    def test_policy_cannot_decide_unknown_jobs(self):
        class Confused(DelayedPolicy):
            name = "confused"

            def decide(self, t, due, pending, machines):
                out = {p.job.job_id: Decision.reject() for p in due}
                out[999] = Decision.reject()
                return out

        inst = random_instance(3, 1, 0.2, seed=0)
        with pytest.raises(ValueError, match="unknown"):
            simulate_delayed(Confused(), inst, 0.1)

    def test_early_decisions_allowed(self):
        class Eager(DelayedPolicy):
            """Decides the whole pending set at every event."""

            name = "eager"

            def decide(self, t, due, pending, machines):
                return {p.job.job_id: Decision.reject() for p in pending}

        inst = random_instance(10, 1, 0.2, seed=0)
        s = simulate_delayed(Eager(), inst, 0.2)
        assert len(s.rejected) == len(inst)

    def test_delta_meta_recorded(self):
        inst = random_instance(5, 1, 0.2, seed=0)
        s = simulate_delayed(DelayedGreedyPolicy(), inst, 0.1)
        assert s.meta["delta"] == 0.1


class TestPriceOfImmediacy:
    def test_deferral_dodges_bait_and_whale(self):
        eps = 0.1
        inst = alternating_instance(3, machines=2, epsilon=eps)
        immediate = simulate_delayed(DelayedGreedyPolicy(), inst, 0.0)
        deferred = simulate_delayed(DelayedGreedyPolicy(), inst, eps / 2)
        assert deferred.accepted_load > 3.0 * immediate.accepted_load

    def test_lookahead_matters(self):
        eps = 0.1
        inst = alternating_instance(3, machines=2, epsilon=eps)
        with_la = simulate_delayed(DelayedGreedyPolicy(lookahead=True), inst, eps)
        without = simulate_delayed(DelayedGreedyPolicy(lookahead=False), inst, eps)
        assert with_la.accepted_load >= without.accepted_load

    def test_deferral_harmless_on_benign(self):
        inst = random_instance(60, 3, 0.2, seed=4)
        d0 = simulate_delayed(DelayedGreedyPolicy(), inst, 0.0).accepted_load
        d1 = simulate_delayed(DelayedGreedyPolicy(), inst, 0.2).accepted_load
        assert d1 > 0.8 * d0
