"""Unit tests for trace recording and the commitment audit."""

import pytest

from repro.engine.audit import CommitmentAuditError, audit_run
from repro.engine.policy import Decision
from repro.engine.recorder import TraceRecorder
from repro.engine.simulator import simulate
from repro.model.instance import Instance
from repro.model.job import Job
from repro.model.schedule import Assignment
from repro.core.threshold import ThresholdPolicy


def _run():
    jobs = [Job(0.0, 1.0, 5.0), Job(0.5, 1.0, 6.0), Job(1.0, 3.0, 4.2)]
    inst = Instance(jobs, machines=2, epsilon=0.05)
    return simulate(ThresholdPolicy(), inst)


class TestRecorder:
    def test_records_every_submission(self):
        s = _run()
        assert len(s.meta["trace"]) == 3

    def test_accepted_rejected_partition(self):
        trace = _run().meta["trace"]
        assert len(trace.accepted()) + len(trace.rejected()) == len(trace)

    def test_acceptance_by_job(self):
        s = _run()
        mapping = s.meta["trace"].acceptance_by_job()
        for jid in s.assignments:
            assert mapping[jid] is True
        for jid in s.rejected:
            assert mapping[jid] is False

    def test_summary_lines_render(self):
        trace = _run().meta["trace"]
        text = trace.render()
        assert "accept" in text or "reject" in text
        assert text.count("\n") == len(trace) - 1

    def test_manual_record(self):
        rec = TraceRecorder()
        job = Job(0.0, 1.0, 5.0, job_id=0)
        r = rec.record(0.0, job, Decision.reject(), [0.0])
        assert r.seq == 0 and not r.accepted


class TestCommitmentAudit:
    def test_clean_run_passes(self):
        audit_run(_run())

    def test_missing_trace_fails(self):
        s = _run()
        del s.meta["trace"]
        with pytest.raises(CommitmentAuditError, match="no decision trace"):
            audit_run(s)

    def test_revised_rejection_detected(self):
        s = _run()
        # Pretend the algorithm later "un-rejected" a job.
        rejected = next(iter(s.rejected))
        job = s.instance[rejected]
        s.rejected.discard(rejected)
        s.assignments[rejected] = Assignment(rejected, 1, job.latest_start)
        with pytest.raises(CommitmentAuditError, match="revised"):
            audit_run(s)

    def test_revised_allocation_detected(self):
        s = _run()
        jid = next(iter(s.assignments))
        a = s.assignments[jid]
        other = 1 - a.machine
        # Move to the other machine post hoc (keep schedule feasible).
        s.assignments[jid] = Assignment(jid, other, a.start)
        with pytest.raises(CommitmentAuditError, match="revised"):
            audit_run(s)

    def test_revised_acceptance_detected(self):
        s = _run()
        jid = next(iter(s.assignments))
        del s.assignments[jid]
        s.rejected.add(jid)
        with pytest.raises(CommitmentAuditError, match="revised"):
            audit_run(s)

    def test_trace_length_mismatch(self):
        s = _run()
        s.meta["trace"].records.pop()
        with pytest.raises(CommitmentAuditError, match="decisions for"):
            audit_run(s)
