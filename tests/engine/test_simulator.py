"""Unit tests for the non-preemptive simulation loop."""

from typing import Sequence

import pytest

from repro.engine.policy import Decision, JobSource, OnlinePolicy
from repro.engine.simulator import SimulationError, simulate, simulate_many, simulate_source
from repro.model.instance import Instance
from repro.model.job import Job
from repro.model.machine import MachineState


class AcceptAll(OnlinePolicy):
    """Accept every job on machine 0 at the earliest feasible time."""

    name = "accept-all"

    def on_submission(self, job, t, machines):
        return Decision.accept(machine=0, start=machines[0].append_start(job, t))


class RejectAll(OnlinePolicy):
    name = "reject-all"

    def on_submission(self, job, t, machines):
        return Decision.reject()


class BrokenPolicy(OnlinePolicy):
    """Commits infeasible allocations (for error-path tests)."""

    name = "broken"

    def __init__(self, machine=0, start=0.0):
        self._machine = machine
        self._start = start

    def on_submission(self, job, t, machines):
        return Decision.accept(machine=self._machine, start=self._start)


def _inst(jobs, m=2, eps=1.0):
    return Instance(jobs, machines=m, epsilon=eps)


class TestBasicRuns:
    def test_accept_all_feasible_stream(self):
        inst = _inst([Job(0, 1, 10), Job(0, 1, 10), Job(1, 1, 10)])
        s = simulate(AcceptAll(), inst)
        assert s.accepted_count == 3
        assert s.machine_loads() == [3.0, 0.0]

    def test_reject_all(self):
        inst = _inst([Job(0, 1, 10)])
        s = simulate(RejectAll(), inst)
        assert s.accepted_count == 0 and s.rejected == {0}

    def test_returns_audited_schedule_with_trace(self):
        inst = _inst([Job(0, 1, 10)])
        s = simulate(AcceptAll(), inst)
        assert "trace" in s.meta and len(s.meta["trace"]) == 1

    def test_simulate_keeps_instance_object(self):
        inst = _inst([Job(0, 1, 10)])
        s = simulate(AcceptAll(), inst)
        assert s.instance is inst

    def test_simulate_many(self):
        insts = [_inst([Job(0, 1, 10)]), _inst([Job(0, 2, 10)])]
        scheds = simulate_many(AcceptAll(), insts)
        assert [s.accepted_load for s in scheds] == [1.0, 2.0]

    def test_empty_instance(self):
        s = simulate(AcceptAll(), _inst([]))
        assert s.accepted_count == 0 and len(s.instance) == 0


class TestErrorPaths:
    def test_machine_out_of_range(self):
        inst = _inst([Job(0, 1, 10)])
        with pytest.raises(SimulationError, match="out of range"):
            simulate(BrokenPolicy(machine=7), inst)

    def test_start_before_decision_time(self):
        inst = _inst([Job(1.0, 1, 10)])
        with pytest.raises(SimulationError):
            simulate(BrokenPolicy(start=0.5), inst)

    def test_overlapping_commitments_rejected(self):
        inst = _inst([Job(0, 5, 10), Job(0, 5, 10)])
        with pytest.raises(SimulationError, match="overlap"):
            simulate(BrokenPolicy(), inst)

    def test_deadline_violation_rejected(self):
        class LatePolicy(OnlinePolicy):
            name = "late"

            def on_submission(self, job, t, machines):
                return Decision.accept(machine=0, start=job.deadline - job.processing + 1)

        inst = _inst([Job(0, 1, 5)])
        with pytest.raises(SimulationError):
            simulate(LatePolicy(), inst)


class TestAdaptiveSource:
    class TwoJobSource(JobSource):
        """Second job's size depends on the first decision."""

        def __init__(self):
            self.sent = 0
            self.first_accepted = None

        machines = property(lambda self: 1)
        epsilon = property(lambda self: 1.0)

        def next_job(self) -> Job | None:
            if self.sent == 0:
                self.sent += 1
                return Job(0.0, 1.0, 10.0)
            if self.sent == 1:
                self.sent += 1
                p = 2.0 if self.first_accepted else 5.0
                return Job(1.0, p, 50.0)
            return None

        def observe(self, job: Job, decision: Decision) -> None:
            if job.job_id == 0:
                self.first_accepted = decision.accepted

    def test_source_sees_decisions(self):
        src = self.TwoJobSource()
        s = simulate_source(AcceptAll(), src)
        assert s.instance[1].processing == 2.0

        src2 = self.TwoJobSource()
        s2 = simulate_source(RejectAll(), src2)
        assert s2.instance[1].processing == 5.0

    def test_max_jobs_guard(self):
        class Infinite(JobSource):
            machines = property(lambda self: 1)
            epsilon = property(lambda self: 1.0)

            def next_job(self):
                return Job(0.0, 1.0, 10.0)

            def observe(self, job, decision):
                pass

        with pytest.raises(SimulationError, match="max_jobs"):
            simulate_source(RejectAll(), Infinite(), max_jobs=50)

    def test_time_travel_rejected(self):
        class BackwardsSource(JobSource):
            def __init__(self):
                self.sent = 0

            machines = property(lambda self: 1)
            epsilon = property(lambda self: 1.0)

            def next_job(self):
                self.sent += 1
                if self.sent == 1:
                    return Job(5.0, 1.0, 10.0)
                if self.sent == 2:
                    return Job(1.0, 1.0, 10.0)
                return None

            def observe(self, job, decision):
                pass

        with pytest.raises(SimulationError, match="before current time"):
            simulate_source(RejectAll(), BackwardsSource())


class TestLoadsSnapshot:
    def test_trace_records_loads_before_decision(self):
        inst = _inst([Job(0, 2, 10), Job(0, 1, 10)])
        s = simulate(AcceptAll(), inst)
        trace = s.meta["trace"]
        assert trace.records[0].loads_before == (0.0, 0.0)
        assert trace.records[1].loads_before == (2.0, 0.0)
