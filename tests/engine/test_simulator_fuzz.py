"""Fuzz tests: the engine must contain arbitrary policy misbehaviour.

A policy that returns random — frequently invalid — decisions must never
corrupt engine state: every run either produces an audited schedule or
raises :class:`SimulationError`, and after a rejection-by-engine the
authoritative timelines are unchanged (verified by re-running the prefix).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.policy import Decision, OnlinePolicy
from repro.engine.simulator import SimulationError, simulate
from repro.model.schedule import Schedule
from repro.workloads import random_instance


class ChaoticPolicy(OnlinePolicy):
    """Makes arbitrary (often infeasible) decisions from a seeded stream."""

    name = "chaotic"

    def __init__(self, seed: int) -> None:
        self._rng = np.random.default_rng(seed)

    def on_submission(self, job, t, machines):
        roll = self._rng.random()
        if roll < 0.4:
            return Decision.reject()
        machine = int(self._rng.integers(-1, len(machines) + 1))
        start = float(t + self._rng.uniform(-1.0, 5.0))
        try:
            return Decision.accept(machine=machine, start=start)
        except ValueError:
            return Decision.reject()


class SometimesValidPolicy(OnlinePolicy):
    """Valid decisions with probability p, garbage otherwise."""

    name = "sometimes-valid"

    def __init__(self, seed: int, p_valid: float = 0.7) -> None:
        self._rng = np.random.default_rng(seed)
        self.p_valid = p_valid

    def on_submission(self, job, t, machines):
        if self._rng.random() < self.p_valid:
            for ms in machines:
                if ms.fits(job, t):
                    return Decision.accept(
                        machine=ms.index, start=ms.append_start(job, t)
                    )
            return Decision.reject()
        # Garbage: random machine, random (bounded) start.
        machine = int(self._rng.integers(0, len(machines)))
        start = float(max(t, job.release) + self._rng.uniform(0.0, 3.0))
        return Decision.accept(machine=machine, start=start)


class TestEngineContainsChaos:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_chaotic_policy_never_corrupts(self, seed):
        inst = random_instance(15, 2, 0.3, seed=seed % 7)
        try:
            schedule = simulate(ChaoticPolicy(seed), inst)
        except SimulationError:
            return  # engine refused an invalid commitment: correct outcome
        # If it survived, the schedule must be fully valid.
        assert isinstance(schedule, Schedule)
        schedule.audit()

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_garbage_acceptances_always_detected_or_valid(self, seed):
        inst = random_instance(20, 2, 0.3, seed=seed % 5)
        policy = SometimesValidPolicy(seed, p_valid=0.8)
        try:
            schedule = simulate(policy, inst)
        except SimulationError:
            return
        schedule.audit()

    def test_error_message_identifies_job(self):
        class Liar(OnlinePolicy):
            name = "liar"

            def on_submission(self, job, t, machines):
                return Decision.accept(machine=0, start=job.deadline + 1.0)

        inst = random_instance(3, 1, 0.5, seed=0)
        with pytest.raises(SimulationError, match="job 0"):
            simulate(Liar(), inst)

    def test_determinism_of_contained_failures(self):
        inst = random_instance(15, 2, 0.3, seed=3)

        def run(seed):
            try:
                return simulate(ChaoticPolicy(seed), inst).accepted_load
            except SimulationError as exc:
                return str(exc)

        assert run(42) == run(42)
