"""Cross-backend equivalence suite for the kernel-backend seam.

The batch backend's contract (:mod:`repro.engine.backend`) is
**bit-identity** with the scalar golden path — not approximate agreement.
These tests assert it three ways:

* exhaustive scalar-vs-batch comparison of schedules, rejected sets and
  ``RunStats`` counters over a grid of workload families, shapes and
  algorithms (and phi values for the penalties kernel);
* hypothesis property tests over adversarially generated instances;
* golden-trace replay: the batch kernels must reproduce the same
  pre-kernel snapshots in ``tests/golden/golden_traces.json`` that pin
  the scalar engines.

Plus the seam's dispatch semantics: loud scalar fallback under
``backend="batch"``, the ``auto`` grouping heuristic, near-tie threshold
decisions pinned identical across backends, ``MAX_KERNEL_STEPS``
enforcement with the same :class:`~repro.engine.kernel.SimulationError`
shape as ``run_model``, RNG seeds inside randomized grouping keys (so
mixed-seed requests can never share a lane row), and the jit seam's loud
numba-absent fallback plus the uncompiled
:func:`repro.engine.jit._step_kernel` pinned bit-identical to the NumPy
step loop.
"""

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.registry import run_algorithm
from repro.core.params import clamp_epsilon, threshold_parameters
from repro.engine import jit
from repro.engine.backend import (
    _AUTO_MIN_GROUP,
    BackendFallbackWarning,
    BatchBackend,
    SimulationRequest,
    run_simulation,
    run_simulations,
)
from repro.engine.batch import (
    IMMEDIATE_RULES,
    run_classify_select_batch,
    run_immediate_batch,
    run_random_admission_batch,
)
from repro.engine.batch_delayed import run_admission_batch, run_delayed_batch
from repro.engine.batch_penalties import run_penalties_batch
from repro.engine.kernel import SimulationError, run_model
from repro.engine.policy import SequenceSource
from repro.engine.simulator import ImmediateCommitmentModel
from repro.core.threshold import ThresholdPolicy
from repro.model.instance import Instance
from repro.model.job import Job
from repro.workloads import cloud_instance, random_instance

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "golden_traces.json"

IMMEDIATE_ALGORITHMS = sorted(IMMEDIATE_RULES)


def _machine_grid(algorithm):
    """m values a rule can legally run on (single-machine rules: just 1)."""
    return (1,) if IMMEDIATE_RULES[algorithm].single_machine else (1, 2, 4)


def _stats_key(stats):
    """Deterministic RunStats counters (timings excluded)."""
    return (
        stats.model,
        stats.algorithm,
        stats.jobs,
        stats.decisions,
        stats.accepted,
        stats.rejected,
        stats.revoked,
        stats.steps,
        stats.events,
        stats.accepted_load,
    )


def _schedule_key(schedule):
    return (
        {j: (a.machine, a.start) for j, a in schedule.assignments.items()},
        schedule.rejected,
        schedule.accepted_load,
    )


def _assert_immediate_equal(scalar, batch):
    assert _schedule_key(scalar.detail) == _schedule_key(batch.detail)
    assert scalar.accepted_load == batch.accepted_load
    assert scalar.accepted_count == batch.accepted_count
    assert _stats_key(scalar.stats) == _stats_key(batch.stats)


def _assert_penalties_equal(scalar, batch):
    s, b = scalar.detail, batch.detail
    assert list(s.completed) == list(b.completed)  # same insertion order
    assert {j: (p.machine, p.start) for j, p in s.completed.items()} == {
        j: (p.machine, p.start) for j, p in b.completed.items()
    }
    assert s.revoked == b.revoked
    assert s.rejected == b.rejected
    assert s.completed_load == b.completed_load
    assert s.penalty_paid == b.penalty_paid
    assert _stats_key(scalar.stats) == _stats_key(batch.stats)


# ---------------------------------------------------------------------------
# exhaustive grid equivalence
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("algorithm", IMMEDIATE_ALGORITHMS)
@pytest.mark.parametrize("family", ["random", "cloud"])
def test_immediate_grid_bit_identical(algorithm, family):
    factory = random_instance if family == "random" else cloud_instance
    for m in _machine_grid(algorithm):
        for seed in (0, 1, 2):
            inst = factory(40, m, 0.25, seed=seed)
            scalar = run_algorithm(algorithm, inst)
            (batch,) = BatchBackend().run_many(
                [SimulationRequest(algorithm, inst)]
            )
            assert batch.detail.meta["backend"] == "batch"
            _assert_immediate_equal(scalar, batch)


@pytest.mark.parametrize("q", [0.0, 0.25, 0.5, 1.0])
@pytest.mark.parametrize("family", ["random", "cloud"])
def test_random_admission_grid_bit_identical(q, family):
    factory = random_instance if family == "random" else cloud_instance
    for m in (1, 2, 4):
        for seed in (0, 7):
            inst = factory(40, m, 0.25, seed=seed)
            kwargs = {"q": q, "rng": seed}
            scalar = run_algorithm("random-admission", inst, **kwargs)
            (batch,) = BatchBackend().run_many(
                [SimulationRequest("random-admission", inst, kwargs=kwargs)]
            )
            assert batch.detail.meta["backend"] == "batch"
            _assert_immediate_equal(scalar, batch)


@pytest.mark.parametrize(
    "kwargs",
    [
        {},
        {"rng": 5},
        {"virtual_machines": 4, "rng": 11},
        {"virtual_machines": 3, "selected": 1},
        {"virtual_machines": 1},
    ],
)
def test_classify_select_grid_bit_identical(kwargs):
    for family in (random_instance, cloud_instance):
        for seed in (0, 1, 2):
            inst = family(40, 1, 0.25, seed=seed)
            scalar = run_algorithm("classify-select", inst, **kwargs)
            (batch,) = BatchBackend().run_many(
                [SimulationRequest("classify-select", inst, kwargs=kwargs)]
            )
            assert batch.detail.meta["backend"] == "batch"
            _assert_immediate_equal(scalar, batch)
            # The virtual-selection provenance must replay too.
            assert scalar.detail.meta["stats"].algorithm == "classify-select"


@pytest.mark.parametrize("delta", [None, 0.0, 0.1, 10.0])
@pytest.mark.parametrize("family", ["random", "cloud"])
def test_delayed_grid_bit_identical(delta, family):
    factory = random_instance if family == "random" else cloud_instance
    kwargs = {} if delta is None else {"delta": delta}
    for m in (1, 2, 4):
        for seed in (0, 1):
            inst = factory(40, m, 0.25, seed=seed)
            scalar = run_algorithm("delayed-greedy", inst, **kwargs)
            (batch,) = BatchBackend().run_many(
                [SimulationRequest("delayed-greedy", inst, kwargs=kwargs)]
            )
            assert batch.detail.meta["backend"] == "batch"
            assert batch.detail.meta["delta"] == scalar.detail.meta["delta"]
            _assert_immediate_equal(scalar, batch)


@pytest.mark.parametrize("algorithm", ["admission-greedy", "admission-lazy"])
@pytest.mark.parametrize("family", ["random", "cloud"])
def test_admission_grid_bit_identical(algorithm, family):
    factory = random_instance if family == "random" else cloud_instance
    for m in (1, 2, 4):
        for seed in (0, 1):
            inst = factory(40, m, 0.25, seed=seed)
            scalar = run_algorithm(algorithm, inst)
            (batch,) = BatchBackend().run_many([SimulationRequest(algorithm, inst)])
            assert batch.detail.meta["backend"] == "batch"
            assert batch.detail.meta["model"] == "commitment-on-admission"
            _assert_immediate_equal(scalar, batch)


@pytest.mark.parametrize("phi", [0.0, 0.5, 1.0, 3.0])
def test_penalties_grid_bit_identical(phi):
    for m in (1, 2, 4):
        for seed in (0, 1):
            inst = random_instance(50, m, 0.2, seed=seed)
            scalar = run_algorithm("revocable-greedy", inst, phi=phi)
            (batch,) = BatchBackend().run_many(
                [SimulationRequest("revocable-greedy", inst, kwargs={"phi": phi})]
            )
            assert batch.detail.meta["backend"] == "batch"
            _assert_penalties_equal(scalar, batch)


def test_batched_group_equals_independent_runs():
    """One batched call over many instances == per-instance scalar runs."""
    instances = [random_instance(30, 3, 0.2, seed=s) for s in range(8)]
    requests = [SimulationRequest("threshold", inst) for inst in instances]
    batch = run_simulations(requests, backend="batch")
    for inst, result in zip(instances, batch):
        _assert_immediate_equal(run_algorithm("threshold", inst), result)


def test_empty_and_single_job_instances():
    for algorithm in IMMEDIATE_ALGORITHMS:
        m = 1 if IMMEDIATE_RULES[algorithm].single_machine else 2
        empty = Instance([], machines=m, epsilon=0.3)
        one = Instance([Job(0.0, 1.0, 10.0)], machines=m, epsilon=0.3)
        for inst in (empty, one):
            scalar = run_algorithm(algorithm, inst)
            (batch,) = BatchBackend().run_many([SimulationRequest(algorithm, inst)])
            _assert_immediate_equal(scalar, batch)
    for inst in (
        Instance([], machines=2, epsilon=0.3),
        Instance([Job(0.0, 1.0, 10.0)], machines=2, epsilon=0.3),
    ):
        scalar = run_algorithm("revocable-greedy", inst)
        (batch,) = BatchBackend().run_many(
            [SimulationRequest("revocable-greedy", inst)]
        )
        _assert_penalties_equal(scalar, batch)
        for algorithm in ("random-admission", "delayed-greedy", "admission-lazy"):
            scalar = run_algorithm(algorithm, inst)
            (batch,) = BatchBackend().run_many([SimulationRequest(algorithm, inst)])
            _assert_immediate_equal(scalar, batch)


# ---------------------------------------------------------------------------
# hypothesis property: equivalence over generated instances
# ---------------------------------------------------------------------------


@st.composite
def instances(draw):
    eps = draw(st.floats(min_value=0.05, max_value=1.0))
    m = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=0, max_value=25))
    jobs = []
    t = 0.0
    for _ in range(n):
        t += draw(st.floats(min_value=0.0, max_value=2.0))
        p = draw(st.floats(min_value=0.05, max_value=4.0))
        extra = draw(st.floats(min_value=0.0, max_value=3.0))
        jobs.append(Job(t, p, t + (1.0 + eps + extra) * p))
    return Instance(jobs, machines=m, epsilon=eps)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(inst=instances(), algorithm=st.sampled_from(IMMEDIATE_ALGORITHMS))
def test_property_immediate_equivalence(inst, algorithm):
    if IMMEDIATE_RULES[algorithm].single_machine and inst.machines != 1:
        inst = Instance(list(inst), machines=1, epsilon=inst.epsilon)
    scalar = run_algorithm(algorithm, inst)
    (batch,) = BatchBackend().run_many([SimulationRequest(algorithm, inst)])
    _assert_immediate_equal(scalar, batch)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    inst=instances(),
    q=st.sampled_from([0.0, 0.3, 0.5, 1.0]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_random_admission_equivalence(inst, q, seed):
    scalar = run_algorithm("random-admission", inst, q=q, rng=seed)
    (batch,) = BatchBackend().run_many(
        [SimulationRequest("random-admission", inst, kwargs={"q": q, "rng": seed})]
    )
    _assert_immediate_equal(scalar, batch)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    inst=instances(),
    virtual_m=st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_classify_select_equivalence(inst, virtual_m, seed):
    if inst.machines != 1:
        inst = Instance(list(inst), machines=1, epsilon=inst.epsilon)
    kwargs = {"virtual_machines": virtual_m, "rng": seed}
    scalar = run_algorithm("classify-select", inst, **kwargs)
    (batch,) = BatchBackend().run_many(
        [SimulationRequest("classify-select", inst, kwargs=kwargs)]
    )
    _assert_immediate_equal(scalar, batch)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(inst=instances(), delta_frac=st.one_of(st.none(), st.floats(0.0, 1.0)))
def test_property_delayed_equivalence(inst, delta_frac):
    kwargs = {} if delta_frac is None else {"delta": delta_frac * inst.epsilon}
    scalar = run_algorithm("delayed-greedy", inst, **kwargs)
    (batch,) = BatchBackend().run_many(
        [SimulationRequest("delayed-greedy", inst, kwargs=kwargs)]
    )
    _assert_immediate_equal(scalar, batch)
    assert scalar.detail.meta["delta"] == batch.detail.meta["delta"]


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    inst=instances(),
    algorithm=st.sampled_from(["admission-greedy", "admission-lazy"]),
)
def test_property_admission_equivalence(inst, algorithm):
    scalar = run_algorithm(algorithm, inst)
    (batch,) = BatchBackend().run_many([SimulationRequest(algorithm, inst)])
    _assert_immediate_equal(scalar, batch)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(inst=instances(), phi=st.floats(min_value=0.0, max_value=4.0))
def test_property_penalties_equivalence(inst, phi):
    scalar = run_algorithm("revocable-greedy", inst, phi=phi)
    (batch,) = BatchBackend().run_many(
        [SimulationRequest("revocable-greedy", inst, kwargs={"phi": phi})]
    )
    _assert_penalties_equal(scalar, batch)


# ---------------------------------------------------------------------------
# golden-trace replay through the batch kernels
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def golden_instance(golden):
    spec = golden["instance"]
    return random_instance(spec["n"], spec["m"], spec["eps"], seed=spec["seed"])


@pytest.mark.parametrize(
    "case, algorithm",
    [("immediate[threshold]", "threshold"), ("immediate[greedy]", "greedy")],
)
def test_batch_replays_golden_schedules(case, algorithm, golden, golden_instance):
    (schedule,) = run_immediate_batch(IMMEDIATE_RULES[algorithm], [golden_instance])
    snapshot = {
        "assignments": [
            {"job": a.job_id, "machine": a.machine, "start": a.start}
            for a in sorted(schedule.assignments.values(), key=lambda a: a.job_id)
        ],
        "rejected": sorted(schedule.rejected),
        "accepted_load": schedule.accepted_load,
    }
    assert snapshot == golden["models"][case]


def _golden_schedule_snapshot(schedule):
    return {
        "assignments": [
            {"job": a.job_id, "machine": a.machine, "start": a.start}
            for a in sorted(schedule.assignments.values(), key=lambda a: a.job_id)
        ],
        "rejected": sorted(schedule.rejected),
        "accepted_load": schedule.accepted_load,
    }


def test_batch_replays_golden_delayed(golden, golden_instance):
    eps = golden_instance.epsilon
    (schedule,) = run_delayed_batch([golden_instance], delta=eps / 2)
    assert (
        _golden_schedule_snapshot(schedule)
        == golden["models"]["delayed[delayed-greedy,delta=0.125]"]
    )


@pytest.mark.parametrize("algorithm", ["admission-greedy", "admission-lazy"])
def test_batch_replays_golden_admission(algorithm, golden, golden_instance):
    (schedule,) = run_admission_batch([golden_instance], algorithm=algorithm)
    assert (
        _golden_schedule_snapshot(schedule)
        == golden["models"][f"admission[{algorithm}]"]
    )


def test_batch_replays_golden_penalties(golden, golden_instance):
    (out,) = run_penalties_batch([golden_instance], 0.5)
    snapshot = {
        "completed": [
            {"job": jid, "machine": p.machine, "start": p.start}
            for jid, p in sorted(out.completed.items())
        ],
        "revoked": sorted(out.revoked),
        "rejected": sorted(out.rejected),
        "net_value": out.net_value,
    }
    assert snapshot == golden["models"]["penalties[revocable-greedy,phi=0.5]"]


# ---------------------------------------------------------------------------
# near-tie threshold decisions (satellite: tolerance discipline)
# ---------------------------------------------------------------------------


def test_near_tie_threshold_decisions_pinned_across_backends():
    """Deadlines within one TIME_EPS of d_lim decide identically.

    The admission test is ``fge(d, d_lim)`` in both backends; probing
    deadlines straddling the tolerance boundary pins that neither backend
    drifts to a raw ``>=`` (or a different epsilon) without the suite
    noticing.
    """
    m, eps = 2, 0.1
    policy = ThresholdPolicy()
    policy.params = threshold_parameters(clamp_epsilon(eps), m)
    # The base job occupies machine 0 on [0, 4); the probe arrives at t=1
    # seeing loads [3.0, 0.0], so its admission threshold is exactly
    # threshold_at(1.0, [3.0, 0.0]) — well above the feasibility floor.
    base = Job(0.0, 4.0, 40.0)
    d_lim = policy.threshold_at(1.0, [3.0, 0.0])
    assert d_lim > 1.0 + 1.0 + 1e-6  # probe stays a valid job at d_lim - 2e-9
    decisions = {}
    for delta in (-2e-9, -5e-10, 0.0, 5e-10, 2e-9):
        probe = Job(1.0, 1.0, d_lim + delta)
        inst = Instance([base, probe], machines=m, epsilon=eps)
        scalar = run_algorithm("threshold", inst)
        (batch,) = BatchBackend().run_many([SimulationRequest("threshold", inst)])
        _assert_immediate_equal(scalar, batch)
        decisions[delta] = 1 in scalar.detail.assignments
    # The tolerance must actually bite: accepts at and just below d_lim
    # (within TIME_EPS), rejects beyond the tolerance.
    assert decisions[0.0] and decisions[5e-10] and decisions[-5e-10]
    assert not decisions[-2e-9]


# ---------------------------------------------------------------------------
# MAX_KERNEL_STEPS enforcement (satellite: kernel guard parity)
# ---------------------------------------------------------------------------


def _tiny_instance(n):
    jobs = [Job(float(i), 1.0, float(i) + 10.0) for i in range(n)]
    return Instance(jobs, machines=2, epsilon=0.5)


@pytest.mark.parametrize("runner", ["immediate", "penalties"])
def test_batch_max_steps_matches_scalar_error_shape(runner):
    inst = _tiny_instance(6)
    with pytest.raises(SimulationError) as scalar_err:
        run_model(
            ImmediateCommitmentModel(ThresholdPolicy(), SequenceSource(inst)),
            max_steps=5,
        )
    if runner == "immediate":
        with pytest.raises(SimulationError) as batch_err:
            run_immediate_batch(IMMEDIATE_RULES["threshold"], [inst], max_steps=5)
        assert batch_err.value.model == "immediate"
    else:
        with pytest.raises(SimulationError) as batch_err:
            run_penalties_batch([inst], 0.5, max_steps=5)
        assert batch_err.value.model == "commitment-with-penalties"
    assert str(batch_err.value).startswith(str(scalar_err.value).split(" [")[0])
    assert "max_steps=5" in str(batch_err.value)
    assert isinstance(batch_err.value, ValueError)  # same dual inheritance


def test_batch_within_max_steps_is_fine():
    inst = _tiny_instance(6)
    (schedule,) = run_immediate_batch(
        IMMEDIATE_RULES["threshold"], [inst], max_steps=7
    )
    assert schedule.accepted_count == 6


@pytest.mark.parametrize(
    "runner, model",
    [
        (lambda inst: run_delayed_batch([inst], max_steps=3), "delayed"),
        (
            lambda inst: run_admission_batch(
                [inst], algorithm="admission-greedy", max_steps=3
            ),
            "commitment-on-admission",
        ),
        (
            lambda inst: run_random_admission_batch([inst], max_steps=3),
            "immediate",
        ),
        (
            lambda inst: run_classify_select_batch(
                [Instance(list(inst), machines=1, epsilon=inst.epsilon)],
                max_steps=3,
            ),
            "immediate",
        ),
    ],
)
def test_new_kernels_enforce_max_steps(runner, model):
    inst = _tiny_instance(8)
    with pytest.raises(SimulationError) as err:
        runner(inst)
    assert err.value.model == model
    assert "max_steps=3" in str(err.value)
    assert isinstance(err.value, ValueError)  # same dual inheritance


# ---------------------------------------------------------------------------
# dispatch semantics: fallback, auto heuristic, validation
# ---------------------------------------------------------------------------


def test_explicit_batch_falls_back_loudly_for_unsupported():
    inst = random_instance(10, 2, 0.3, seed=0)
    requests = [
        SimulationRequest("threshold", inst),
        SimulationRequest("dasgupta-palis", inst),  # preemptive: unsupported
    ]
    with pytest.warns(BackendFallbackWarning, match="dasgupta-palis"):
        results = run_simulations(requests, backend="batch")
    assert results[0].detail.meta["backend"] == "batch"
    assert results[1].accepted_load == run_algorithm("dasgupta-palis", inst).accepted_load


def test_record_events_falls_back_to_scalar():
    inst = random_instance(10, 2, 0.3, seed=0)
    request = SimulationRequest("threshold", inst, record_events=True)
    assert not BatchBackend().supports(request)
    with pytest.warns(BackendFallbackWarning):
        result = run_simulation(request, backend="batch")
    assert result.events is not None


def test_auto_batches_groups_and_not_singletons():
    inst = random_instance(12, 2, 0.3, seed=1)
    single = run_simulations([SimulationRequest("threshold", inst)], backend="auto")
    assert single[0].detail.meta.get("backend") != "batch"
    group = run_simulations(
        [SimulationRequest("threshold", inst)] * _AUTO_MIN_GROUP, backend="auto"
    )
    assert all(r.detail.meta["backend"] == "batch" for r in group)
    # Penalties vectorises within the instance: batched even as a singleton.
    pen = run_simulations(
        [SimulationRequest("revocable-greedy", inst)], backend="auto"
    )
    assert pen[0].detail.meta["backend"] == "batch"


def test_unknown_backend_rejected():
    inst = random_instance(4, 1, 0.3, seed=0)
    with pytest.raises(ValueError, match="unknown backend"):
        run_simulations([SimulationRequest("threshold", inst)], backend="vector")


def test_batch_backend_run_many_rejects_unsupported_directly():
    inst = random_instance(4, 2, 0.3, seed=0)
    with pytest.raises(ValueError, match="not supported by the batch backend"):
        BatchBackend().run_many([SimulationRequest("migration-greedy", inst)])


def test_batch_requires_uniform_shape():
    a = random_instance(10, 2, 0.3, seed=0)
    b = random_instance(12, 2, 0.3, seed=0)
    with pytest.raises(ValueError, match="uniform shape"):
        run_immediate_batch(IMMEDIATE_RULES["greedy"], [a, b])


def test_registry_revocable_greedy_entry():
    inst = random_instance(20, 2, 0.3, seed=3)
    default = run_algorithm("revocable-greedy", inst)
    explicit = run_algorithm("revocable-greedy", inst, phi=0.5)
    assert default.accepted_load == explicit.accepted_load
    assert default.detail.phi == 0.5
    other = run_algorithm("revocable-greedy", inst, phi=2.0)
    assert other.detail.phi == 2.0
    assert default.stats is not None


# ---------------------------------------------------------------------------
# grouping keys: RNG seeds, single-machine guards, scalar-only Generators
# ---------------------------------------------------------------------------


def test_mixed_seed_requests_never_share_a_group():
    """Regression: the grouping key must carry the RNG seed stream.

    Two random-admission requests with different seeds sharing a lane row
    would silently replay the wrong stream — their keys must differ, and
    a mixed-seed batch must still match per-seed scalar runs exactly.
    """
    backend = BatchBackend()
    inst = random_instance(30, 2, 0.3, seed=0)
    keys = {
        seed: backend.group_key(
            SimulationRequest("random-admission", inst, kwargs={"rng": seed})
        )
        for seed in (0, 1, 2)
    }
    assert len(set(keys.values())) == 3 and None not in keys.values()
    inst1 = random_instance(30, 1, 0.3, seed=0)
    ckeys = {
        seed: backend.group_key(
            SimulationRequest("classify-select", inst1, kwargs={"rng": seed})
        )
        for seed in (0, 1, 2)
    }
    assert len(set(ckeys.values())) == 3 and None not in ckeys.values()
    # End-to-end: a mixed-seed batch equals per-seed scalar runs.
    requests = [
        SimulationRequest("random-admission", inst, kwargs={"q": 0.5, "rng": seed})
        for seed in (3, 3, 9, 9, 27)
    ]
    for scalar, batch in zip(
        run_simulations(requests, backend="scalar"),
        run_simulations(requests, backend="batch"),
    ):
        _assert_immediate_equal(scalar, batch)


def test_rng_none_and_absent_are_distinct_seed_streams():
    """``rng=None`` means the library default seed, absent means the
    policy default (0) — they are different streams and different keys."""
    backend = BatchBackend()
    inst = random_instance(20, 2, 0.3, seed=0)
    k_none = backend.group_key(
        SimulationRequest("random-admission", inst, kwargs={"rng": None})
    )
    k_absent = backend.group_key(SimulationRequest("random-admission", inst))
    assert k_none is not None and k_absent is not None and k_none != k_absent
    for kwargs in ({"rng": None}, {}):
        scalar = run_algorithm("random-admission", inst, **kwargs)
        (batch,) = BatchBackend().run_many(
            [SimulationRequest("random-admission", inst, kwargs=kwargs)]
        )
        _assert_immediate_equal(scalar, batch)


def test_live_generator_rng_is_scalar_only():
    backend = BatchBackend()
    inst = random_instance(10, 2, 0.3, seed=0)
    inst1 = random_instance(10, 1, 0.3, seed=0)
    gen_req = SimulationRequest(
        "random-admission", inst, kwargs={"rng": np.random.default_rng(0)}
    )
    assert backend.group_key(gen_req) is None
    assert (
        backend.group_key(
            SimulationRequest(
                "classify-select", inst1, kwargs={"rng": np.random.default_rng(0)}
            )
        )
        is None
    )
    with pytest.warns(BackendFallbackWarning, match="random-admission"):
        result = run_simulation(gen_req, backend="batch")
    assert result.detail.meta.get("backend") != "batch"


def test_single_machine_rules_unsupported_on_multi_machine_instances():
    backend = BatchBackend()
    inst = random_instance(10, 3, 0.3, seed=0)
    assert backend.group_key(SimulationRequest("goldwasser-kerbikov", inst)) is None
    assert backend.group_key(SimulationRequest("classify-select", inst)) is None
    # The scalar fallback then raises the canonical registry error.
    with pytest.warns(BackendFallbackWarning):
        with pytest.raises(ValueError, match="single-machine"):
            run_simulation(
                SimulationRequest("goldwasser-kerbikov", inst), backend="batch"
            )


# ---------------------------------------------------------------------------
# auto heuristics on the newly supported algorithms
# ---------------------------------------------------------------------------


def test_auto_heuristics_for_new_immediate_variants():
    inst = random_instance(12, 2, 0.3, seed=1)
    inst1 = random_instance(12, 1, 0.3, seed=1)
    for algorithm, target in (
        ("lee-style", inst),
        ("goldwasser-kerbikov", inst1),
        ("random-admission", inst),
        ("classify-select", inst1),
    ):
        single = run_simulations([SimulationRequest(algorithm, target)], backend="auto")
        assert single[0].detail.meta.get("backend") != "batch", algorithm
        group = run_simulations(
            [SimulationRequest(algorithm, target)] * _AUTO_MIN_GROUP, backend="auto"
        )
        assert all(r.detail.meta["backend"] == "batch" for r in group), algorithm


def test_auto_batches_delayed_and_admission_even_as_singletons():
    """Those kernels win within one instance, like penalties."""
    inst = random_instance(12, 2, 0.3, seed=1)
    for algorithm in ("delayed-greedy", "admission-greedy", "admission-lazy"):
        (result,) = run_simulations(
            [SimulationRequest(algorithm, inst)], backend="auto"
        )
        assert result.detail.meta["backend"] == "batch", algorithm
        _assert_immediate_equal(run_algorithm(algorithm, inst), result)


def test_auto_never_mixes_seed_groups():
    inst = random_instance(12, 2, 0.3, seed=1)
    requests = [
        SimulationRequest("random-admission", inst, kwargs={"rng": 1}),
        SimulationRequest("random-admission", inst, kwargs={"rng": 1}),
        SimulationRequest("random-admission", inst, kwargs={"rng": 2}),
    ]
    results = run_simulations(requests, backend="auto")
    # The pair batches, the odd seed demotes to scalar under auto.
    assert results[0].detail.meta["backend"] == "batch"
    assert results[1].detail.meta["backend"] == "batch"
    assert results[2].detail.meta.get("backend") != "batch"
    for request, result in zip(requests, results):
        _assert_immediate_equal(
            run_algorithm("random-admission", inst, **dict(request.kwargs)), result
        )


# ---------------------------------------------------------------------------
# the jit seam: loud numba-absent fallback, uncompiled kernel bit-identity
# ---------------------------------------------------------------------------


def test_jit_env_flag_parsing(monkeypatch):
    monkeypatch.delenv(jit.JIT_ENV, raising=False)
    assert not jit.jit_requested()
    for value in ("1", "true", "YES", " on "):
        monkeypatch.setenv(jit.JIT_ENV, value)
        assert jit.jit_requested(), value
    for value in ("0", "false", "", "off"):
        monkeypatch.setenv(jit.JIT_ENV, value)
        assert not jit.jit_requested(), value


def test_jit_requested_without_numba_warns_and_falls_back(monkeypatch):
    monkeypatch.setenv(jit.JIT_ENV, "1")
    monkeypatch.setattr(jit, "_numba_probe", False)
    with pytest.warns(BackendFallbackWarning, match="numba is not installed"):
        assert not jit.jit_active()
    # The batch path still produces bit-identical results on the fallback.
    inst = random_instance(25, 2, 0.3, seed=4)
    scalar = run_algorithm("threshold", inst)
    with pytest.warns(BackendFallbackWarning):
        (batch,) = BatchBackend().run_many([SimulationRequest("threshold", inst)])
    _assert_immediate_equal(scalar, batch)


def test_jit_inactive_when_not_requested(monkeypatch):
    monkeypatch.delenv(jit.JIT_ENV, raising=False)
    assert not jit.jit_active()


@pytest.mark.parametrize(
    "algorithm",
    [
        "threshold",
        "threshold[first-fit]",
        "threshold[worst-fit]",
        "greedy",
        "greedy[least-loaded]",
        "lee-style",
    ],
)
def test_uncompiled_step_kernel_matches_numpy_path(algorithm):
    """The jit kernel body, run as plain Python, equals the NumPy loop.

    This pins the loop's bit-identity in environments without numba; the
    CI numba leg re-runs the same comparisons compiled.
    """
    from repro.engine.batch import (
        _job_arrays,
        _lee_targets,
        _simulate,
        _threshold_tables,
    )

    rule = IMMEDIATE_RULES[algorithm]
    instances = [random_instance(30, 3, 0.25, seed=s) for s in range(4)]
    m, n = 3, 30
    rel, proc, dl = _job_arrays(instances, n)
    f_pad = kvec = rank_ok = targets = None
    if rule.admission == "threshold":
        f_pad, kvec, rank_ok = _threshold_tables(instances, m)
    if rule.admission == "lee":
        targets = _lee_targets(instances, m, n)
    numpy_out = _simulate(
        rel, proc, dl, m, rule.admission, rule.allocation,
        f_pad=f_pad, kvec=kvec, rank_ok=rank_ok, targets=targets,
    )
    jit_out = jit.simulate_jit(
        rel, proc, dl, m, rule.admission, rule.allocation,
        f_pad=f_pad, kvec=kvec, targets=targets, kernel=jit._step_kernel,
    )
    for a, b in zip(numpy_out, jit_out):
        assert np.array_equal(a, b)


def test_uncompiled_step_kernel_matches_numpy_random_draws():
    from repro.engine.batch import _job_arrays, _simulate
    from repro.utils.rng import make_rng

    instances = [random_instance(30, 2, 0.25, seed=s) for s in range(4)]
    rel, proc, dl = _job_arrays(instances, 30)
    draws = make_rng(7).random(30)
    numpy_out = _simulate(
        rel, proc, dl, 2, "random", "least-loaded", q=0.6, draws=draws,
    )
    jit_out = jit.simulate_jit(
        rel, proc, dl, 2, "random", "least-loaded",
        q=0.6, draws=draws, kernel=jit._step_kernel,
    )
    for a, b in zip(numpy_out, jit_out):
        assert np.array_equal(a, b)
