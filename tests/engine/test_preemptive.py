"""Unit tests for the preemptive EDF machine and simulation loop."""

import pytest

from repro.engine.preemptive import (
    ActiveJob,
    PreemptiveMachine,
    PreemptivePolicy,
    edf_feasible,
    simulate_preemptive,
)
from repro.model.instance import Instance
from repro.model.job import Job


class TestEdfFeasible:
    def test_empty_is_feasible(self):
        assert edf_feasible(0.0, [])

    def test_single_job(self):
        assert edf_feasible(0.0, [ActiveJob(Job(0, 2, 3, job_id=0), 2.0)])
        assert not edf_feasible(2.0, [ActiveJob(Job(0, 2, 3, job_id=0), 2.0)])

    def test_prefix_sum_violation(self):
        items = [
            ActiveJob(Job(0, 1, 1.5, job_id=0), 1.0),
            ActiveJob(Job(0, 1, 1.8, job_id=1), 1.0),
        ]
        assert not edf_feasible(0.0, items)  # second completes at 2 > 1.8

    def test_extra_job_considered(self):
        items = [ActiveJob(Job(0, 1, 2, job_id=0), 1.0)]
        assert edf_feasible(0.0, items, extra=Job(0, 1, 3, job_id=1))
        assert not edf_feasible(0.0, items, extra=Job(0, 2, 2.5, job_id=1))

    def test_finished_remainders_ignored(self):
        items = [ActiveJob(Job(0, 1, 1.0, job_id=0), 0.0)]
        assert edf_feasible(5.0, items)


class TestPreemptiveMachine:
    def test_advance_executes_edf_order(self):
        m = PreemptiveMachine(0)
        m.accept(Job(0, 2, 10, job_id=0))
        m.accept(Job(0, 1, 2, job_id=1))  # earlier deadline -> runs first
        m.advance(1.0)
        assert m.completions == {1: 1.0}
        assert m.outstanding() == pytest.approx(2.0)

    def test_preemption_on_later_arrival(self):
        m = PreemptiveMachine(0)
        m.accept(Job(0, 4, 20, job_id=0))
        m.advance(1.0)
        m.accept(Job(1, 1, 2.5, job_id=1))  # urgent: preempts
        m.advance(2.0)
        assert m.completions[1] == pytest.approx(2.0)
        assert m.outstanding() == pytest.approx(3.0)

    def test_drain_completes_everything(self):
        m = PreemptiveMachine(0)
        m.accept(Job(0, 2, 10, job_id=0))
        m.accept(Job(0, 3, 10, job_id=1))
        m.drain()
        assert m.outstanding() == 0.0
        assert set(m.completions) == {0, 1}

    def test_time_backwards_raises(self):
        m = PreemptiveMachine(0)
        m.advance(2.0)
        with pytest.raises(ValueError):
            m.advance(1.0)

    def test_feasible_with(self):
        m = PreemptiveMachine(0)
        m.accept(Job(0, 2, 2.2, job_id=0))
        assert not m.feasible_with(Job(0, 1, 2.0, job_id=1))
        assert m.feasible_with(Job(0, 1, 4.0, job_id=1))


class GreedyFirstFeasible(PreemptivePolicy):
    name = "greedy-preemptive"

    def on_submission(self, job, t, machines):
        for m in machines:
            if m.feasible_with(job):
                return m.index
        return None


class TestSimulatePreemptive:
    def test_accepts_feasible_stream(self):
        jobs = [Job(0, 1, 3), Job(0, 1, 3), Job(0.5, 1, 4)]
        inst = Instance(jobs, machines=2, epsilon=1.0)
        out = simulate_preemptive(GreedyFirstFeasible(), inst)
        assert out.accepted_load == pytest.approx(3.0)
        out.audit()

    def test_rejects_overload(self):
        jobs = [Job(0, 1, 1.5), Job(0, 1, 1.5)]
        inst = Instance(jobs, machines=1, epsilon=0.5)
        out = simulate_preemptive(GreedyFirstFeasible(), inst)
        assert len(out.accepted_ids) == 1

    def test_invalid_machine_choice_raises(self):
        class Bad(PreemptivePolicy):
            name = "bad"

            def on_submission(self, job, t, machines):
                return 99

        inst = Instance([Job(0, 1, 3)], machines=1, epsilon=1.0)
        with pytest.raises(ValueError, match="out of range"):
            simulate_preemptive(Bad(), inst)

    def test_infeasible_acceptance_raises(self):
        class Reckless(PreemptivePolicy):
            name = "reckless"

            def on_submission(self, job, t, machines):
                return 0

        jobs = [Job(0, 1, 1.5), Job(0, 1, 1.5)]
        inst = Instance(jobs, machines=1, epsilon=0.5)
        with pytest.raises(ValueError, match="infeasible"):
            simulate_preemptive(Reckless(), inst)

    def test_audit_catches_missing_completion(self):
        jobs = [Job(0, 1, 3)]
        inst = Instance(jobs, machines=1, epsilon=1.0)
        out = simulate_preemptive(GreedyFirstFeasible(), inst)
        out.completions.clear()
        with pytest.raises(AssertionError, match="never completed"):
            out.audit()
