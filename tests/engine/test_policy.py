"""Unit tests for the policy/decision/job-source interfaces."""

import pytest

from repro.engine.policy import Decision, SequenceSource, as_source
from repro.model.instance import Instance
from repro.model.job import Job


class TestDecision:
    def test_reject_factory(self):
        d = Decision.reject(reason="busy")
        assert not d.accepted
        assert d.info["reason"] == "busy"

    def test_accept_factory(self):
        d = Decision.accept(machine=1, start=2.5, d_lim=3.0)
        assert d.accepted and d.machine == 1 and d.start == 2.5
        assert d.info["d_lim"] == 3.0

    def test_accept_requires_allocation(self):
        with pytest.raises(ValueError, match="machine and start"):
            Decision(accepted=True)

    def test_info_excluded_from_equality(self):
        assert Decision.reject(a=1) == Decision.reject(a=2)


class TestSequenceSource:
    def test_yields_jobs_in_order(self):
        inst = Instance([Job(0, 1, 5), Job(1, 1, 5)], machines=1, epsilon=1.0)
        src = SequenceSource(inst)
        assert src.next_job().job_id == 0
        assert src.next_job().job_id == 1
        assert src.next_job() is None

    def test_exposes_instance_params(self):
        inst = Instance([Job(0, 1, 5)], machines=3, epsilon=0.4)
        src = SequenceSource(inst)
        assert src.machines == 3 and src.epsilon == 0.4

    def test_observe_is_noop(self):
        inst = Instance([Job(0, 1, 5)], machines=1, epsilon=1.0)
        src = SequenceSource(inst)
        job = src.next_job()
        src.observe(job, Decision.reject())  # must not raise


class TestAsSource:
    def test_passes_source_through(self):
        inst = Instance([Job(0, 1, 5)], machines=1, epsilon=1.0)
        src = SequenceSource(inst)
        assert as_source(src) is src

    def test_wraps_instance(self):
        inst = Instance([Job(0, 1, 5)], machines=1, epsilon=1.0)
        assert isinstance(as_source(inst), SequenceSource)

    def test_wraps_job_iterable_with_params(self):
        src = as_source([Job(0, 1, 5)], machines=2, epsilon=0.5)
        assert src.machines == 2

    def test_iterable_without_params_raises(self):
        with pytest.raises(ValueError):
            as_source([Job(0, 1, 5)])
