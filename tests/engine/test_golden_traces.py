"""Golden-trace regression tests for the kernel-backed engines.

``tests/golden/golden_traces.json`` snapshots one representative schedule
per commitment model, produced by the *seed* (pre-kernel) engines.  The
kernel refactor must reproduce them bit-for-bit — accepted set, machine
indices and start times — so these tests pin the semantics of all five
``simulate_*`` entry points.  Regenerating the file is a deliberate,
reviewed act, never a test-run side effect.
"""

import json
from pathlib import Path

import pytest

from repro.baselines.dasgupta_palis import DasGuptaPalisPolicy
from repro.baselines.greedy import GreedyPolicy
from repro.core.threshold import ThresholdPolicy
from repro.engine import (
    AdmissionGreedyPolicy,
    AdmissionLazyPolicy,
    DelayedGreedyPolicy,
    RevocableGreedyPolicy,
    simulate,
    simulate_admission,
    simulate_delayed,
    simulate_preemptive,
    simulate_with_penalties,
)
from repro.workloads import random_instance

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "golden_traces.json"


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def instance(golden):
    spec = golden["instance"]
    return random_instance(spec["n"], spec["m"], spec["eps"], seed=spec["seed"])


def _schedule_snapshot(schedule):
    return {
        "assignments": [
            {"job": a.job_id, "machine": a.machine, "start": a.start}
            for a in sorted(schedule.assignments.values(), key=lambda a: a.job_id)
        ],
        "rejected": sorted(schedule.rejected),
        "accepted_load": schedule.accepted_load,
    }


SCHEDULE_CASES = {
    "immediate[threshold]": lambda inst: simulate(ThresholdPolicy(), inst),
    "immediate[greedy]": lambda inst: simulate(GreedyPolicy(), inst),
    "delayed[delayed-greedy,delta=0.125]": lambda inst: simulate_delayed(
        DelayedGreedyPolicy(), inst, 0.125
    ),
    "admission[admission-lazy]": lambda inst: simulate_admission(
        AdmissionLazyPolicy(), inst
    ),
    "admission[admission-greedy]": lambda inst: simulate_admission(
        AdmissionGreedyPolicy(), inst
    ),
}


@pytest.mark.parametrize("case", sorted(SCHEDULE_CASES))
def test_schedule_models_match_seed_exactly(case, golden, instance):
    schedule = SCHEDULE_CASES[case](instance)
    assert _schedule_snapshot(schedule) == golden["models"][case]


def test_penalties_model_matches_seed_exactly(golden, instance):
    out = simulate_with_penalties(RevocableGreedyPolicy(), instance, 0.5)
    snapshot = {
        "completed": [
            {"job": jid, "machine": p.machine, "start": p.start}
            for jid, p in sorted(out.completed.items())
        ],
        "revoked": sorted(out.revoked),
        "rejected": sorted(out.rejected),
        "net_value": out.net_value,
    }
    assert snapshot == golden["models"]["penalties[revocable-greedy,phi=0.5]"]


def test_preemptive_model_matches_seed_exactly(golden, instance):
    out = simulate_preemptive(DasGuptaPalisPolicy(), instance)
    snapshot = {
        "accepted_ids": sorted(out.accepted_ids),
        "completions": {str(k): v for k, v in sorted(out.completions.items())},
        "accepted_load": out.accepted_load,
    }
    assert snapshot == golden["models"]["preemptive[dasgupta-palis]"]


def test_golden_file_covers_all_five_models(golden):
    prefixes = {name.split("[")[0] for name in golden["models"]}
    assert prefixes == {"immediate", "delayed", "admission", "penalties", "preemptive"}
