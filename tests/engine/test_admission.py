"""Tests for the commitment-on-admission engine and policies."""

import pytest

from repro.engine.admission import (
    AdmissionEddPolicy,
    AdmissionGreedyPolicy,
    AdmissionLazyPolicy,
    AdmissionPolicy,
    simulate_admission,
)
from repro.model.instance import Instance
from repro.model.job import Job, tight_deadline
from repro.workloads import alternating_instance, random_instance


class TestEngineBasics:
    def test_accepts_easy_stream(self):
        jobs = [Job(0, 1, 10), Job(0.5, 1, 10), Job(1.0, 1, 10)]
        inst = Instance(jobs, machines=2, epsilon=1.0)
        s = simulate_admission(AdmissionGreedyPolicy(), inst)
        assert s.accepted_count == 3
        s.audit()

    def test_expires_unstartable_jobs(self):
        # Two tight unit jobs on one machine: the second cannot start.
        eps = 0.2
        jobs = [
            Job(0.0, 1.0, tight_deadline(0.0, 1.0, eps)),
            Job(0.0, 1.0, tight_deadline(0.0, 1.0, eps)),
        ]
        inst = Instance(jobs, machines=1, epsilon=eps)
        s = simulate_admission(AdmissionGreedyPolicy(), inst)
        assert s.accepted_count == 1
        assert len(s.rejected) == 1

    def test_empty_instance(self):
        inst = Instance([], machines=2, epsilon=0.5)
        s = simulate_admission(AdmissionGreedyPolicy(), inst)
        assert s.accepted_count == 0

    def test_model_recorded(self):
        inst = random_instance(5, 1, 0.3, seed=0)
        s = simulate_admission(AdmissionEddPolicy(), inst)
        assert s.meta["model"] == "commitment-on-admission"

    def test_all_jobs_decided(self):
        inst = random_instance(60, 3, 0.2, seed=8)
        s = simulate_admission(AdmissionLazyPolicy(), inst)
        assert len(s.assignments) + len(s.rejected) == len(inst)

    def test_borderline_expiry_terminates(self):
        # Regression: a job expiring exactly while all machines are busy
        # used to hang the event loop.
        jobs = [
            Job(0.0, 2.0, 10.0),          # occupies the machine
            Job(0.1, 1.0, 1.2),           # latest start 0.2 < machine free
        ]
        inst = Instance(jobs, machines=1, epsilon=0.1)
        s = simulate_admission(AdmissionGreedyPolicy(), inst)
        assert 1 in s.rejected

    def test_bogus_policy_choice_rejected(self):
        class Bogus(AdmissionPolicy):
            name = "bogus"

            def choose(self, t, pending):
                return Job(0.0, 1.0, 100.0, job_id=999)

        inst = random_instance(3, 1, 0.5, seed=1)
        with pytest.raises(ValueError, match="not startable"):
            simulate_admission(Bogus(), inst)


class TestPolicies:
    def test_greedy_prefers_largest(self):
        jobs = [Job(0.0, 1.0, 10.0), Job(0.0, 3.0, 10.0)]
        inst = Instance(jobs, machines=1, epsilon=1.0)
        s = simulate_admission(AdmissionGreedyPolicy(), inst)
        assert s.assignments[1].start == pytest.approx(0.0)

    def test_edd_prefers_urgent(self):
        jobs = [Job(0.0, 1.0, 10.0), Job(0.0, 1.0, 2.5)]
        inst = Instance(jobs, machines=1, epsilon=1.0)
        s = simulate_admission(AdmissionEddPolicy(), inst)
        assert s.assignments[1].start == pytest.approx(0.0)

    def test_lazy_waits_until_forced(self):
        eps = 0.5
        jobs = [Job(0.0, 1.0, tight_deadline(0.0, 1.0, eps))]
        inst = Instance(jobs, machines=1, epsilon=eps)
        s = simulate_admission(AdmissionLazyPolicy(), inst)
        # Started at the latest start time, not at release.
        assert s.assignments[0].start == pytest.approx(0.5, abs=1e-6)

    def test_lazy_dodges_bait_and_whale(self):
        eps = 0.05
        inst = alternating_instance(3, machines=2, epsilon=eps)
        lazy = simulate_admission(AdmissionLazyPolicy(), inst)
        eager = simulate_admission(AdmissionGreedyPolicy(), inst)
        whales = {j.job_id for j in inst if j.tag("kind") == "whale"}
        assert whales <= set(lazy.assignments)
        assert lazy.accepted_load > 5.0 * eager.accepted_load

    @pytest.mark.parametrize(
        "policy", [AdmissionGreedyPolicy(), AdmissionEddPolicy(), AdmissionLazyPolicy()]
    )
    def test_random_runs_audited(self, policy):
        for seed in range(3):
            inst = random_instance(50, 3, 0.25, seed=seed)
            simulate_admission(policy, inst).audit()
