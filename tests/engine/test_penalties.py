"""Tests for the commitment-with-penalties engine and policy."""

import pytest

from repro.engine.penalties import (
    PenaltyPolicy,
    PlannedJob,
    RevocableGreedyPolicy,
    simulate_with_penalties,
)
from repro.model.instance import Instance
from repro.model.job import Job
from repro.workloads import alternating_instance, random_instance


class TestPlannedJob:
    def test_end_and_started(self):
        p = PlannedJob(Job(0, 2, 10, job_id=0), machine=0, start=3.0)
        assert p.end == 5.0
        assert not p.started(2.0)
        assert p.started(3.0)


class TestEngineValidation:
    def test_negative_phi_rejected(self):
        inst = random_instance(3, 1, 0.2, seed=0)
        with pytest.raises(ValueError, match="non-negative"):
            simulate_with_penalties(RevocableGreedyPolicy(), inst, -1.0)

    def test_post_start_revocation_forbidden(self):
        class Cheater(PenaltyPolicy):
            name = "cheater"

            def on_submission(self, job, t, plans):
                if plans:
                    # Try to revoke a started plan.
                    return None, [plans[0].job.job_id]
                return PlannedJob(job, 0, t), []

        jobs = [Job(0.0, 1.0, 3.0), Job(0.5, 1.0, 3.5)]
        inst = Instance(jobs, machines=1, epsilon=1.0)
        with pytest.raises(ValueError, match="post-start"):
            simulate_with_penalties(Cheater(), inst, 0.0)

    def test_overlapping_plan_rejected(self):
        class Overlapper(PenaltyPolicy):
            name = "overlapper"

            def on_submission(self, job, t, plans):
                return PlannedJob(job, 0, job.latest_start), []

        jobs = [Job(0.0, 2.0, 2.5), Job(0.0, 2.0, 2.5)]
        inst = Instance(jobs, machines=1, epsilon=0.25)
        with pytest.raises(ValueError, match="overlaps"):
            simulate_with_penalties(Overlapper(), inst, 0.0)

    def test_unknown_revocation(self):
        class Ghost(PenaltyPolicy):
            name = "ghost"

            def on_submission(self, job, t, plans):
                return None, [12345]

        inst = random_instance(2, 1, 0.2, seed=0)
        with pytest.raises(ValueError, match="unknown"):
            simulate_with_penalties(Ghost(), inst, 0.0)


class TestOutcomeAccounting:
    def test_net_value(self):
        eps = 0.1
        inst = alternating_instance(2, machines=2, epsilon=eps)
        out = simulate_with_penalties(RevocableGreedyPolicy(), inst, 0.5)
        assert out.net_value == pytest.approx(
            out.completed_load - 0.5 * sum(inst[j].processing for j in out.revoked)
        )

    def test_audit_covers_all_jobs(self):
        inst = random_instance(40, 2, 0.2, seed=5)
        out = simulate_with_penalties(RevocableGreedyPolicy(), inst, 1.0)
        assert len(out.completed) + len(out.revoked) + len(out.rejected) == len(inst)
        out.audit()


class TestRevocableGreedy:
    def test_revokes_bait_for_whale(self):
        eps = 0.1
        inst = alternating_instance(2, machines=2, epsilon=eps)
        out = simulate_with_penalties(RevocableGreedyPolicy(), inst, 0.0)
        assert len(out.revoked) > 0
        whales = {j.job_id for j in inst if j.tag("kind") == "whale"}
        assert whales <= set(out.completed), "all whales should be kept"

    def test_high_penalty_stops_revocation(self):
        eps = 0.1
        inst = alternating_instance(2, machines=2, epsilon=eps)
        out = simulate_with_penalties(RevocableGreedyPolicy(), inst, 1e6)
        assert len(out.revoked) == 0

    def test_net_value_monotone_in_phi(self):
        eps = 0.1
        inst = alternating_instance(3, machines=2, epsilon=eps)
        values = [
            simulate_with_penalties(RevocableGreedyPolicy(), inst, phi).net_value
            for phi in (0.0, 0.5, 2.0, 1e6)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_swap_rule_respects_penalty_threshold(self):
        # Whale worth 9.8; bait worth 1.  Swap profitable iff 9.8 > (1+phi).
        eps = 0.1
        inst = alternating_instance(1, machines=1, epsilon=eps)
        profitable = simulate_with_penalties(RevocableGreedyPolicy(), inst, 5.0)
        unprofitable = simulate_with_penalties(RevocableGreedyPolicy(), inst, 20.0)
        assert len(profitable.revoked) == 1
        assert len(unprofitable.revoked) == 0

    def test_random_runs_audited(self):
        for seed in range(4):
            inst = random_instance(50, 3, 0.25, seed=seed)
            out = simulate_with_penalties(RevocableGreedyPolicy(), inst, 0.5)
            out.audit()
