"""Tests for the dependency-free SVG chart renderer."""

import pytest

from repro.analysis.svg import PALETTE, SvgChart, fig1_svg


class TestSvgChart:
    def test_minimal_chart_renders(self):
        svg = SvgChart().add_series("s", [1, 2, 3], [1, 4, 9]).render()
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "polyline" in svg

    def test_empty_chart_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            SvgChart().render()

    def test_series_validation(self):
        with pytest.raises(ValueError, match="lengths differ"):
            SvgChart().add_series("s", [1, 2], [1])
        with pytest.raises(ValueError, match="two points"):
            SvgChart().add_series("s", [1], [1])

    def test_legend_and_colors(self):
        svg = (
            SvgChart()
            .add_series("alpha", [1, 2], [1, 2])
            .add_series("beta", [1, 2], [2, 1])
            .render()
        )
        assert "alpha" in svg and "beta" in svg
        assert PALETTE[0] in svg and PALETTE[1] in svg

    def test_markers_rendered_as_circles(self):
        svg = (
            SvgChart()
            .add_series("s", [0, 1], [0, 1])
            .add_marker(0.5, 0.5)
            .render()
        )
        assert "<circle" in svg

    def test_logx_projection_monotone(self):
        chart = SvgChart(logx=True).add_series("s", [0.01, 0.1, 1.0], [1, 2, 3])
        bounds = chart._bounds()
        px1, _ = chart._project(0.01, 1, bounds)
        px2, _ = chart._project(0.1, 2, bounds)
        px3, _ = chart._project(1.0, 3, bounds)
        # Log spacing: equal pixel gaps between decades.
        assert px2 - px1 == pytest.approx(px3 - px2, abs=1e-6)

    def test_dashed_series(self):
        svg = SvgChart().add_series("s", [1, 2], [1, 2], dashed=True).render()
        assert "stroke-dasharray" in svg

    def test_labels(self):
        svg = (
            SvgChart(title="T", x_label="X", y_label="Y")
            .add_series("s", [1, 2], [1, 2])
            .render()
        )
        assert ">T<" in svg and ">X<" in svg and ">Y<" in svg

    def test_nonfinite_points_skipped(self):
        svg = SvgChart().add_series("s", [1, 2, 3], [1.0, float("inf"), 2.0]).render()
        # Two finite points survive in the polyline.
        poly = [ln for ln in svg.splitlines() if "polyline" in ln][0]
        assert poly.count(",") >= 2


class TestFig1Svg:
    def test_full_figure(self):
        svg = fig1_svg(machine_counts=(1, 2, 3))
        assert "m = 1" in svg and "m = 3" in svg
        # m=2 has 1 transition circle, m=3 has 2 (within clip) -> >= 3 circles.
        assert svg.count("<circle") >= 3
        # The m = 1 reference is dashed, per the paper's figure.
        assert "stroke-dasharray" in svg

    def test_writes_valid_xml(self, tmp_path):
        import xml.etree.ElementTree as ET

        svg = fig1_svg(machine_counts=(1, 2))
        path = tmp_path / "fig1.svg"
        path.write_text(svg)
        tree = ET.parse(path)  # raises on malformed XML
        assert tree.getroot().tag.endswith("svg")


class TestGanttSvg:
    def _schedule(self):
        from repro.core.threshold import ThresholdPolicy
        from repro.engine.simulator import simulate
        from repro.workloads import random_instance

        inst = random_instance(12, 2, 0.25, seed=3)
        return simulate(ThresholdPolicy(), inst)

    def test_structure(self):
        from repro.analysis.svg import gantt_svg

        s = self._schedule()
        svg = gantt_svg(s, title="t")
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        # One filled rect per accepted job (plus the background rect).
        assert svg.count("fill-opacity") == s.accepted_count
        # One dashed outline per rejected job.
        assert svg.count("stroke-dasharray") == len(s.rejected)
        assert ">m0<" in svg and ">m1<" in svg

    def test_valid_xml(self, tmp_path):
        import xml.etree.ElementTree as ET

        from repro.analysis.svg import gantt_svg

        path = tmp_path / "gantt.svg"
        path.write_text(gantt_svg(self._schedule()))
        assert ET.parse(path).getroot().tag.endswith("svg")

    def test_empty_schedule(self):
        from repro.analysis.svg import gantt_svg
        from repro.model.instance import Instance
        from repro.model.schedule import Schedule

        inst = Instance([], machines=1, epsilon=0.5)
        svg = gantt_svg(Schedule(instance=inst))
        assert "<svg" in svg
