"""Tests for the capacity planner and latency analytics."""

import math

import pytest

from repro.analysis.capacity import (
    machines_for_target,
    machines_for_target_exact,
    marginal_machine_value,
    planning_table,
    slack_for_target,
)
from repro.analysis.latency import compare_latency, latency_stats, slack_headroom
from repro.core.guarantees import theorem2_bound
from repro.core.threshold import ThresholdPolicy
from repro.baselines.greedy import GreedyPolicy
from repro.engine.simulator import simulate
from repro.model.instance import Instance
from repro.model.job import Job
from repro.model.schedule import Assignment, Schedule
from repro.workloads import random_instance


class TestMachinesForTarget:
    def test_exact_minimum_meets_target(self):
        eps, target = 0.1, 7.0
        m = machines_for_target_exact(eps, target)
        assert m is not None
        assert theorem2_bound(eps, m) <= target
        if m > 1:
            assert theorem2_bound(eps, m - 1) > target

    def test_generous_target_needs_one_machine(self):
        assert machines_for_target_exact(0.5, 100.0) == 1

    def test_impossible_target(self):
        # Fixed-eps floor is ~ 2 + ln(1/eps) = 6.6 at eps = 0.01.
        assert machines_for_target(0.01, 3.0) is None

    def test_nonsense_target(self):
        assert machines_for_target(0.5, 0.9) is None


class TestSlackForTarget:
    def test_threshold_property(self):
        m, target = 3, 5.0
        eps = slack_for_target(m, target)
        assert eps is not None
        assert theorem2_bound(eps, m) <= target + 1e-6
        # Slightly less slack misses the target (minimality).
        assert theorem2_bound(eps * 0.99, m) > target

    def test_unachievable_on_fleet(self):
        # Floor at eps=1 is 2 + 1/m; target below that is impossible.
        assert slack_for_target(2, 2.4) is None

    def test_trivial_target(self):
        eps = slack_for_target(2, 1000.0)
        assert eps is not None
        assert theorem2_bound(eps, 2) <= 1000.0 + 1e-6
        assert eps < 1e-4  # huge target -> tiny required slack


class TestTables:
    def test_planning_table_shape(self):
        rows = planning_table(epsilons=(0.1, 0.5), machine_counts=(1, 2))
        assert len(rows) == 4
        for row in rows:
            assert row["guarantee"] >= row["c"] - 1e-12

    def test_marginal_value_of_tight_bound_nonnegative(self):
        rows = marginal_machine_value(0.1, up_to=8)
        c_improvements = [r["c_improvement"] for r in rows[1:]]
        assert all(i >= -1e-9 for i in c_improvements)
        assert c_improvements[0] > c_improvements[-1]

    def test_guarantee_nonmonotone_at_phase_four(self):
        # Documented quirk: Lemma 11's additive loss makes the Theorem-2
        # *guarantee* dip when k reaches 4 (c itself stays monotone).
        rows = marginal_machine_value(0.1, up_to=8)
        by_m = {r["machines"]: r for r in rows}
        assert by_m[8]["guarantee"] > by_m[7]["guarantee"]
        assert by_m[8]["c"] < by_m[7]["c"]

    def test_planner_sound_despite_nonmonotonicity(self):
        # Target between theorem2(0.1, 7) and theorem2(0.1, 8): the scan
        # must return 7, not overshoot to a larger power of two.
        target = (theorem2_bound(0.1, 7) + theorem2_bound(0.1, 8)) / 2
        m = machines_for_target_exact(0.1, target)
        assert m == 7


class TestLatency:
    def _schedule(self):
        jobs = [Job(0.0, 1.0, 10.0), Job(0.0, 2.0, 10.0), Job(1.0, 1.0, 10.0)]
        inst = Instance(jobs, machines=1, epsilon=1.0)
        s = Schedule(instance=inst)
        s.assignments[0] = Assignment(0, 0, 0.0)   # wait 0
        s.assignments[1] = Assignment(1, 0, 1.0)   # wait 1
        s.assignments[2] = Assignment(2, 0, 3.0)   # wait 2
        return s

    def test_known_values(self):
        stats = latency_stats(self._schedule())
        assert stats.count == 3
        assert stats.mean_wait == pytest.approx(1.0)
        assert stats.max_wait == pytest.approx(2.0)
        # flows: 1, 3, 3 -> mean 7/3; stretches: 1, 1.5, 3.
        assert stats.mean_flow == pytest.approx(7 / 3)
        assert stats.mean_stretch == pytest.approx((1 + 1.5 + 3) / 3)

    def test_empty_schedule(self):
        inst = Instance([], machines=1, epsilon=0.5)
        stats = latency_stats(Schedule(instance=inst))
        assert stats.count == 0 and stats.mean_wait == 0.0

    def test_compare_rows(self):
        inst = random_instance(40, 2, 0.3, seed=3)
        rows = compare_latency(
            {
                "threshold": simulate(ThresholdPolicy(), inst),
                "greedy": simulate(GreedyPolicy(), inst),
            }
        )
        assert {r["algorithm"] for r in rows} == {"threshold", "greedy"}
        for r in rows:
            assert r["p95_wait"] >= r["median_wait"] - 1e-12

    def test_slack_headroom_bounds(self):
        inst = random_instance(40, 2, 0.3, seed=4)
        s = simulate(ThresholdPolicy(), inst)
        h = slack_headroom(s)
        # Headroom is at least 0 (deadlines met) for every accepted job.
        assert h >= 0.0

    def test_headroom_exact_case(self):
        jobs = [Job(0.0, 2.0, 4.0)]
        inst = Instance(jobs, machines=1, epsilon=1.0)
        s = Schedule(instance=inst)
        s.assignments[0] = Assignment(0, 0, 0.0)  # completes 2, d 4
        assert slack_headroom(s) == pytest.approx(1.0)
