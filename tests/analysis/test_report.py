"""Tests for the condensed reproduction report."""

import pytest

from repro.analysis.report import SECTIONS, generate_report


class TestGenerateReport:
    def test_all_sections_render(self):
        text = generate_report()
        assert text.startswith("# Reproduction report")
        for heading in [
            "## Bound function",
            "## Adversary duels",
            "## Random workload comparison",
            "## Commitment-model taxonomy",
            "## Randomized single machine",
            "## Weighted impossibility",
            "## Dominant-phase growth rate",
            "## Simulation kernel",
            "## Fault-tolerant sweeps",
            "## Bracket cache (content-addressed OPT reuse)",
            "## Sharded execution",
            "## Elastic execution",
        ]:
            assert heading in text, heading

    def test_subset(self):
        text = generate_report(["bounds"])
        assert "## Bound function" in text
        assert "## Adversary duels" not in text

    def test_unknown_section(self):
        with pytest.raises(ValueError, match="unknown report sections"):
            generate_report(["nope"])

    def test_sections_registry_complete(self):
        assert set(SECTIONS) == {
            "bounds",
            "duels",
            "workloads",
            "commitment-models",
            "randomized",
            "impossibility",
            "growth",
            "planning",
            "engine",
            "resilience",
            "performance",
            "sharding",
            "transport",
            "elastic",
        }

    def test_performance_section(self):
        text = generate_report(["performance"])
        assert "## Bracket cache" in text
        assert "cold" in text and "warm" in text
        assert "100%" in text  # the warm pass hits on every bracket

    def test_sharding_section(self):
        text = generate_report(["sharding"])
        assert "## Sharded execution" in text
        assert "straggler ratio" in text
        assert "elastic x2" in text  # scheduler + worker count stamped
        assert "bit-identical to the single-host run: **yes**" in text

    def test_elastic_section(self):
        text = generate_report(["elastic"])
        assert "## Elastic execution" in text
        assert "10x slow" in text and "dies mid-sweep" in text
        assert "worker straggler ratio" in text
        assert "bit-identical\nto the serial run under worker chaos: **yes**" in text

    def test_planning_section(self):
        text = generate_report(["planning"])
        assert "Capacity planning" in text
        assert "machines needed" in text

    def test_report_contains_key_numbers(self):
        text = generate_report(["bounds", "duels"])
        # Eq. (1) agreement at machine precision and the 2/7 corner.
        assert "e-1" in text  # scientific-notation error
        assert "0.2857" in text

    def test_cli_report_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        assert main(["report", "--sections", "bounds", "--out", str(out)]) == 0
        assert out.read_text().startswith("# Reproduction report")
