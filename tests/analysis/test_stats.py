"""Tests for bootstrap intervals and power-law fitting."""

import numpy as np
import pytest

from repro.analysis.stats import (
    bootstrap_mean,
    fit_power_law,
    growth_exponent_per_phase,
)
from repro.core.params import BoundFunction, corner_values


class TestBootstrap:
    def test_mean_and_coverage(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(5.0, 1.0, size=200)
        ci = bootstrap_mean(samples, seed=1)
        assert ci.mean == pytest.approx(samples.mean())
        assert ci.contains(5.0)
        assert ci.lower < ci.mean < ci.upper

    def test_deterministic_given_seed(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        a = bootstrap_mean(samples, seed=7)
        b = bootstrap_mean(samples, seed=7)
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_degenerate_samples(self):
        ci = bootstrap_mean([2.0] * 10)
        assert ci.lower == ci.upper == 2.0
        assert ci.halfwidth == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean([])
        with pytest.raises(ValueError):
            bootstrap_mean([1.0], confidence=1.5)


class TestPowerLaw:
    def test_exact_power_law_recovered(self):
        x = np.array([1.0, 2.0, 4.0, 8.0])
        y = 3.0 * x**-0.5
        fit = fit_power_law(x, y)
        assert fit.slope == pytest.approx(-0.5)
        assert np.exp(fit.intercept) == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_power_law([1, 2, 4], [2, 4, 8])
        assert fit.predict(np.array([8.0]))[0] == pytest.approx(16.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, -2.0], [1.0, 2.0])


class TestGrowthExponents:
    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_dominant_phase_slope_is_minus_inv_m(self, m):
        # Deep inside phase k = 1 the paper predicts c ~ eps^{-1/m}.
        bf = BoundFunction(m)
        eps = np.geomspace(1e-8, 1e-5, 30)  # far below eps_{1,m}
        fit = fit_power_law(eps, bf.series(eps))
        assert fit.slope == pytest.approx(-1.0 / m, abs=0.02)
        assert fit.r_squared > 0.999

    def test_last_phase_is_inverse_epsilon_after_shift(self):
        # Phase k = m: c = 1 + 1/m + 1/eps, so c - (1 + 1/m) ~ eps^{-1}.
        m = 3
        corners = corner_values(m)
        eps = np.geomspace(corners[m - 1] * 1.05, 0.99, 40)
        vals = BoundFunction(m).series(eps) - (1.0 + 1.0 / m)
        fit = fit_power_law(eps, vals)
        assert fit.slope == pytest.approx(-1.0, abs=1e-6)

    def test_per_phase_bucketing(self):
        m = 3
        corners = corner_values(m)
        eps = np.geomspace(1e-6, 0.99, 300)
        vals = BoundFunction(m).series(eps)
        fits = growth_exponent_per_phase(eps, vals, corners)
        assert [k for k, _ in fits] == [1, 2, 3]
        slopes = {k: fit.slope for k, fit in fits}
        # Chain depth m - k + 1 governs the exponent; phase 1 sampled deep
        # enough to be near -1/3, later phases transitional but ordered.
        assert slopes[1] == pytest.approx(-1.0 / m, abs=0.02)
        assert slopes[1] > slopes[2] > slopes[3]

    def test_requires_enough_samples_per_phase(self):
        fits = growth_exponent_per_phase([0.5], [3.0], (0.0, 0.3, 1.0))
        assert fits == []
