"""Tests for acceptance profiles."""

import numpy as np
import pytest

from repro.analysis.profile import acceptance_profile, compare_profiles
from repro.core.threshold import ThresholdPolicy
from repro.baselines.greedy import GreedyPolicy
from repro.engine.simulator import simulate
from repro.model.instance import Instance
from repro.model.job import Job
from repro.model.schedule import Assignment, Schedule
from repro.workloads import random_instance


def _schedule_with(accept_ids, jobs, machines=1):
    inst = Instance(jobs, machines=machines, epsilon=0.1, validate=False)
    s = Schedule(instance=inst, algorithm="manual")
    t_by_machine = {}
    for jid in accept_ids:
        job = inst[jid]
        start = max(job.release, t_by_machine.get(0, 0.0))
        s.assignments[jid] = Assignment(jid, 0, start)
        t_by_machine[0] = start + job.processing
    s.rejected = {j.job_id for j in inst} - set(accept_ids)
    return s


class TestAcceptanceProfile:
    def test_counts_partition(self):
        jobs = [Job(0, p, 100.0) for p in (1.0, 2.0, 3.0, 4.0)]
        s = _schedule_with([0, 1], jobs)
        prof = acceptance_profile(s, buckets=2)
        assert prof.offered_count.sum() == 4
        assert prof.accepted_count.sum() == 2
        assert prof.offered_load.sum() == pytest.approx(10.0)

    def test_small_jobs_accepted_profile(self):
        jobs = [Job(0, p, 100.0) for p in (1.0, 1.1, 5.0, 5.1)]
        s = _schedule_with([0, 1], jobs)
        prof = acceptance_profile(s, buckets=2)
        assert prof.count_rates[0] == pytest.approx(1.0)
        assert prof.count_rates[1] == pytest.approx(0.0)

    def test_laxity_and_slack_dimensions(self):
        inst = random_instance(40, 2, 0.2, seed=1)
        s = simulate(GreedyPolicy(), inst)
        for dim in ("laxity", "slack"):
            prof = acceptance_profile(s, dimension=dim, buckets=4)
            assert prof.offered_count.sum() == len(inst)

    def test_unknown_dimension(self):
        inst = random_instance(5, 1, 0.2, seed=0)
        s = simulate(GreedyPolicy(), inst)
        with pytest.raises(ValueError, match="dimension"):
            acceptance_profile(s, dimension="color")

    def test_bucket_validation(self):
        inst = random_instance(5, 1, 0.2, seed=0)
        s = simulate(GreedyPolicy(), inst)
        with pytest.raises(ValueError, match="buckets"):
            acceptance_profile(s, buckets=0)

    def test_empty_instance(self):
        inst = Instance([], machines=1, epsilon=0.5)
        prof = acceptance_profile(Schedule(instance=inst), buckets=3)
        assert prof.offered_count.sum() == 0

    def test_constant_dimension_does_not_crash(self):
        jobs = [Job(0, 1.0, 100.0) for _ in range(6)]
        s = _schedule_with([0, 1, 2], jobs)
        prof = acceptance_profile(s, buckets=3)
        assert prof.offered_count.sum() == 6

    def test_rows_shape(self):
        inst = random_instance(30, 2, 0.2, seed=2)
        s = simulate(GreedyPolicy(), inst)
        rows = acceptance_profile(s, buckets=5).rows()
        assert len(rows) == 5
        assert {"offered", "accepted", "count_rate", "load_rate"} <= set(rows[0])


class TestCompareProfiles:
    def test_side_by_side(self):
        inst = random_instance(60, 2, 0.1, seed=3)
        schedules = {
            "threshold": simulate(ThresholdPolicy(), inst),
            "greedy": simulate(GreedyPolicy(), inst),
        }
        rows = compare_profiles(schedules, buckets=4)
        assert len(rows) == 4
        assert all("threshold" in r and "greedy" in r for r in rows)

    def test_empty_input(self):
        assert compare_profiles({}) == []
