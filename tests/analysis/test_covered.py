"""Tests for covered-interval diagnostics (the Section-4 proof objects)."""

import pytest

from repro.adversary.base import duel
from repro.analysis.covered import (
    covered_intervals,
    interval_diagnostics,
    performance_ratio_bound,
    rows,
    uncovered_fraction,
)
from repro.baselines.greedy import GreedyPolicy
from repro.core.threshold import ThresholdPolicy
from repro.engine.simulator import simulate
from repro.model.instance import Instance
from repro.model.job import Job
from repro.model.schedule import Assignment, Schedule
from repro.workloads import random_instance


def _schedule(jobs, accepted, m=1, eps=0.5):
    inst = Instance(jobs, machines=m, epsilon=eps, validate=False)
    s = Schedule(instance=inst, algorithm="manual")
    for jid, machine, start in accepted:
        s.assignments[jid] = Assignment(jid, machine, start)
    s.rejected = {j.job_id for j in inst} - {a[0] for a in accepted}
    return s


class TestCoveredIntervals:
    def test_no_rejections_means_no_covered_intervals(self):
        s = _schedule([Job(0, 1, 5)], [(0, 0, 0.0)])
        assert covered_intervals(s) == []
        assert performance_ratio_bound(s) == 1.0
        assert uncovered_fraction(s) == 1.0

    def test_rejected_windows_merge(self):
        jobs = [
            Job(0.0, 1.0, 2.0),   # rejected: window [0, 2)
            Job(1.0, 1.0, 3.0),   # rejected: window [1, 3) -> merges
            Job(10.0, 1.0, 12.0), # rejected: separate window
        ]
        s = _schedule(jobs, [])
        ivs = covered_intervals(s)
        assert len(ivs) == 2
        assert (ivs[0].start, ivs[0].end) == (0.0, 3.0)
        assert (ivs[1].start, ivs[1].end) == (10.0, 12.0)

    def test_online_load_clipped_to_interval(self):
        jobs = [
            Job(0.0, 4.0, 20.0),  # accepted, runs [0, 4)
            Job(1.0, 1.0, 2.5),   # rejected: window [1, 2.5)
        ]
        s = _schedule(jobs, [(0, 0, 0.0)])
        diag = interval_diagnostics(s)
        assert len(diag) == 1
        assert diag[0].online_load == pytest.approx(1.5)
        assert diag[0].capacity == pytest.approx(1.5)
        assert diag[0].rejected_load == pytest.approx(1.0)
        assert diag[0].ratio_bound == pytest.approx(2.0)

    def test_infinite_bound_when_interval_empty_of_work(self):
        jobs = [Job(0.0, 1.0, 2.0)]
        s = _schedule(jobs, [])
        assert performance_ratio_bound(s) == float("inf")

    def test_rows_shape(self):
        inst = random_instance(30, 2, 0.2, seed=1)
        s = simulate(GreedyPolicy(), inst)
        table = rows(s)
        for row in table:
            assert row["length"] >= 0
            assert row["capacity"] == pytest.approx(2 * row["length"])


class TestAgainstDuels:
    @pytest.mark.parametrize("m,eps", [(1, 0.2), (2, 0.1), (3, 0.2)])
    def test_bound_dominates_forced_ratio_on_adversary(self, m, eps):
        # On adversarial instances the optimum gains essentially nothing
        # outside covered intervals, so the covered-interval bound must sit
        # at or above the measured forced ratio.
        result = duel(ThresholdPolicy(), m=m, epsilon=eps)
        bound = performance_ratio_bound(result.schedule)
        assert bound >= result.forced_ratio * (1 - 1e-9)

    def test_single_covered_interval_on_duel(self):
        # The whole game happens inside one merged rejected window.
        result = duel(ThresholdPolicy(), m=2, epsilon=0.2)
        assert len(covered_intervals(result.schedule)) == 1

    def test_uncovered_fraction_small_under_overload(self):
        inst = random_instance(60, 2, 0.1, seed=3)
        s = simulate(ThresholdPolicy(), inst)
        assert 0.0 <= uncovered_fraction(s) <= 1.0
