"""Tests for service-level analytics."""

import pytest

from repro.analysis.sla import service_stats, service_table
from repro.baselines.greedy import GreedyPolicy
from repro.core.threshold import ThresholdPolicy
from repro.engine.simulator import simulate
from repro.model.instance import Instance
from repro.model.job import Job
from repro.model.schedule import Assignment, Schedule
from repro.workloads.cloud import cloud_instance


def _tagged_schedule():
    jobs = [
        Job(0.0, 1.0, 10.0).with_tags(service="a"),
        Job(0.0, 2.0, 10.0).with_tags(service="a"),
        Job(1.0, 3.0, 10.0).with_tags(service="b"),
    ]
    inst = Instance(jobs, machines=2, epsilon=1.0)
    s = Schedule(instance=inst)
    s.assignments[0] = Assignment(0, 0, 0.5)  # a, wait 0.5
    s.assignments[2] = Assignment(2, 1, 1.0)  # b, wait 0
    s.rejected = {1}
    return s


class TestServiceStats:
    def test_per_class_accounting(self):
        stats = {c.service: c for c in service_stats(_tagged_schedule())}
        a, b = stats["a"], stats["b"]
        assert (a.offered_jobs, a.accepted_jobs) == (2, 1)
        assert a.offered_load == pytest.approx(3.0)
        assert a.accepted_load == pytest.approx(1.0)
        assert a.job_acceptance_rate == pytest.approx(0.5)
        assert a.load_acceptance_rate == pytest.approx(1 / 3)
        assert a.mean_wait == pytest.approx(0.5)
        assert b.load_acceptance_rate == pytest.approx(1.0)
        assert b.mean_wait == pytest.approx(0.0)

    def test_untagged_jobs_bucketed(self):
        jobs = [Job(0.0, 1.0, 5.0)]
        inst = Instance(jobs, machines=1, epsilon=1.0)
        s = Schedule(instance=inst)
        s.rejected = {0}
        stats = service_stats(s)
        assert stats[0].service == "untagged"
        assert stats[0].accepted_jobs == 0

    def test_rates_sum_against_totals(self):
        inst = cloud_instance(80, 3, 0.1, seed=2)
        s = simulate(GreedyPolicy(), inst)
        stats = service_stats(s)
        assert sum(c.accepted_load for c in stats) == pytest.approx(s.accepted_load)
        assert sum(c.offered_load for c in stats) == pytest.approx(inst.total_load)


class TestServiceTable:
    def test_columns_per_algorithm(self):
        inst = cloud_instance(80, 3, 0.1, seed=2)
        rows = service_table(
            {
                "threshold": simulate(ThresholdPolicy(), inst),
                "greedy": simulate(GreedyPolicy(), inst),
            }
        )
        assert {r["service"] for r in rows} == {"interactive", "analytics", "batch"}
        for row in rows:
            assert 0.0 <= row["threshold"] <= 1.0
            assert 0.0 <= row["greedy"] <= 1.0
