"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in ["bound", "fig1", "duel", "tree", "compare"]:
            args = {
                "bound": ["bound", "--m", "2", "--eps", "0.5"],
                "fig1": ["fig1"],
                "duel": ["duel", "--m", "2", "--eps", "0.5"],
                "tree": ["tree", "--m", "2", "--eps", "0.5"],
                "compare": ["compare"],
            }[cmd]
            ns = parser.parse_args(args)
            assert ns.command == cmd


class TestCommands:
    def test_bound(self, capsys):
        assert main(["bound", "--m", "2", "--eps", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "3.5" in out and "phase k = 2" in out

    def test_fig1_with_csv(self, capsys, tmp_path):
        csv = tmp_path / "fig1.csv"
        code = main(
            ["fig1", "--machines", "1,2", "--points", "40", "--csv", str(csv)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "m=1" in out and "m=2" in out
        assert csv.read_text().startswith("epsilon,m=1,m=2")

    def test_duel(self, capsys):
        assert main(["duel", "--m", "2", "--eps", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "forced ratio" in out and "c(eps, m)" in out

    def test_duel_with_trace(self, capsys):
        assert main(["duel", "--m", "1", "--eps", "0.5", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "job 0" in out

    def test_duel_rejects_preemptive(self, capsys):
        code = main(["duel", "--m", "2", "--eps", "0.2", "--algorithm", "dasgupta-palis"])
        assert code == 2
        assert "non-preemptive" in capsys.readouterr().err

    def test_tree(self, capsys):
        assert main(["tree", "--m", "2", "--eps", "0.2"]) == 0
        assert "phase 2 stops" in capsys.readouterr().out

    @pytest.mark.parametrize("workload", ["random", "cloud", "bait-and-whale"])
    def test_compare(self, capsys, workload):
        code = main(
            [
                "compare",
                "--workload", workload,
                "--m", "2",
                "--eps", "0.2",
                "--n", "20",
                "--algorithms", "threshold,greedy",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "threshold" in out and "greedy" in out


class TestSimulateCommand:
    def test_kernel_stats_printed(self, capsys):
        code = main(
            ["simulate", "--algorithm", "greedy", "--n", "30", "--m", "2", "--seed", "7"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "model          : immediate" in out
        assert "decisions" in out and "kdec/s" in out

    def test_events_dump(self, capsys):
        code = main(["simulate", "--algorithm", "delayed-greedy", "--n", "10", "--events"])
        assert code == 0
        out = capsys.readouterr().out
        assert "model          : delayed" in out
        assert "decision" in out and "job 0" in out

    def test_migration_has_no_kernel_stats(self, capsys):
        code = main(["simulate", "--algorithm", "migration-greedy", "--n", "12"])
        assert code == 0
        assert "not kernel-backed" in capsys.readouterr().out

    def test_unknown_algorithm(self, capsys):
        assert main(["simulate", "--algorithm", "nope"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err


class TestSweepCommand:
    def test_sweep_serial_with_csv(self, capsys, tmp_path):
        from repro.cli import main

        csv = tmp_path / "rows.csv"
        code = main(
            [
                "sweep",
                "--epsilons", "0.3",
                "--machines", "2",
                "--n", "8",
                "--repetitions", "1",
                "--csv", str(csv),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean_ratio_upper" in out
        header = csv.read_text().splitlines()[0]
        assert header.startswith("epsilon,machines,repetition,algorithm")

    def test_sweep_journal_resume_and_manifest(self, capsys, tmp_path):
        from repro.cli import main

        journal = tmp_path / "sweep.jsonl"
        manifest = tmp_path / "failures.json"
        csv = tmp_path / "rows.csv"
        base = [
            "sweep",
            "--epsilons", "0.3",
            "--machines", "2",
            "--n", "8",
            "--repetitions", "1",
        ]
        code = main(base + ["--journal", str(journal), "--manifest", str(manifest)])
        assert code == 0
        out = capsys.readouterr().out
        assert "1/1 cells completed" in out
        assert journal.exists()
        import json

        assert json.loads(manifest.read_text())["quarantined"] == 0

        # Resume replays everything from disk and still writes the CSV.
        code = main(base + ["--resume", str(journal), "--csv", str(csv)])
        assert code == 0
        assert "1 replayed from journal" in capsys.readouterr().out
        assert csv.read_text().startswith("epsilon,machines")

    def test_sweep_resume_rejects_mismatched_spec(self, tmp_path, capsys):
        import pytest

        from repro.cli import main
        from repro.workloads.journal import JournalMismatchError

        journal = tmp_path / "sweep.jsonl"
        assert main(
            ["sweep", "--epsilons", "0.3", "--machines", "2", "--n", "8",
             "--repetitions", "1", "--journal", str(journal)]
        ) == 0
        capsys.readouterr()
        with pytest.raises(JournalMismatchError, match="base_seed"):
            main(
                ["sweep", "--epsilons", "0.3", "--machines", "2", "--n", "8",
                 "--repetitions", "1", "--seed", "9", "--resume", str(journal)]
            )

    def test_sweep_refuses_to_clobber_existing_journal(self, tmp_path, capsys):
        from repro.cli import main

        journal = tmp_path / "sweep.jsonl"
        base = [
            "sweep",
            "--epsilons", "0.3",
            "--machines", "2",
            "--n", "8",
            "--repetitions", "1",
        ]
        assert main(base + ["--journal", str(journal)]) == 0
        before = journal.read_text()
        capsys.readouterr()
        # Forgot --resume: must refuse, not truncate hours of checkpoints.
        assert main(base + ["--journal", str(journal)]) == 2
        assert "already exists" in capsys.readouterr().err
        assert journal.read_text() == before

    def test_sweep_rejects_conflicting_journal_and_resume(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["sweep", "--epsilons", "0.3", "--machines", "2", "--n", "8",
             "--repetitions", "1",
             "--journal", str(tmp_path / "a.jsonl"),
             "--resume", str(tmp_path / "b.jsonl")]
        )
        assert code == 2
        assert "different files" in capsys.readouterr().err

    def test_sweep_cloud_workload(self, capsys):
        from repro.cli import main

        assert main(
            [
                "sweep",
                "--workload", "cloud",
                "--epsilons", "0.2",
                "--machines", "2",
                "--n", "10",
                "--repetitions", "1",
            ]
        ) == 0
        assert "cloud" in capsys.readouterr().out

    def test_sweep_cache_warm_rerun(self, capsys, tmp_path):
        from repro.cli import main

        argv = [
            "sweep", "--epsilons", "0.3", "--machines", "2", "--n", "8",
            "--repetitions", "1", "--cache-dir", str(tmp_path / "brackets"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "bracket cache: 0 hits / 1 misses" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "bracket cache: 1 hits / 0 misses (100% hit rate)" in warm

    def test_sweep_no_cache(self, capsys):
        from repro.cli import main

        assert main(
            ["sweep", "--epsilons", "0.3", "--machines", "2", "--n", "8",
             "--repetitions", "1", "--no-cache"]
        ) == 0
        assert "bracket cache" not in capsys.readouterr().out


class TestShardedSweepCommand:
    BASE = [
        "sweep",
        "--epsilons", "0.2,0.5",
        "--machines", "1,2",
        "--n", "6",
        "--repetitions", "1",
        "--algorithms", "greedy",
    ]

    def test_shards_require_shard_index(self, capsys):
        from repro.cli import main

        assert main(self.BASE + ["--shards", "3"]) == 2
        assert "--shard-index" in capsys.readouterr().err
        assert main(self.BASE + ["--shards", "3", "--shard-index", "5"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_shard_run_and_merge_match_unsharded(self, capsys, tmp_path):
        from repro.cli import main

        plain_csv = tmp_path / "plain.csv"
        assert main(self.BASE + ["--csv", str(plain_csv)]) == 0
        capsys.readouterr()

        journals = []
        for i in range(3):
            journal = tmp_path / f"shard{i}.jsonl"
            journals.append(str(journal))
            code = main(
                self.BASE
                + ["--shards", "3", "--shard-index", str(i),
                   "--journal", str(journal)]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert f"shard {i}/3" in out

        merged_csv = tmp_path / "merged.csv"
        merged_journal = tmp_path / "merged.jsonl"
        code = main(
            ["merge", *journals, "--out", str(merged_journal),
             "--csv", str(merged_csv)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "merged 3 journal(s)" in out
        assert "0 missing" in out
        assert merged_csv.read_text() == plain_csv.read_text()
        assert merged_journal.exists()

    def test_resume_shard_with_wrong_flags_fails(self, capsys, tmp_path):
        from repro.cli import main

        journal = tmp_path / "shard0.jsonl"
        assert main(
            self.BASE
            + ["--shards", "3", "--shard-index", "0", "--journal", str(journal)]
        ) == 0
        capsys.readouterr()
        code = main(
            self.BASE
            + ["--shards", "4", "--shard-index", "0", "--resume", str(journal)]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "n_shards=3" in err and "n_shards=4" in err


class TestMergeCommand:
    def test_incomplete_merge_degraded_exit(self, capsys, tmp_path):
        from repro.cli import main

        journal = tmp_path / "shard0.jsonl"
        assert main(
            ["sweep", "--epsilons", "0.2,0.5", "--machines", "1", "--n", "6",
             "--repetitions", "1", "--algorithms", "greedy",
             "--shards", "2", "--shard-index", "0", "--journal", str(journal)]
        ) == 0
        capsys.readouterr()
        assert main(["merge", str(journal)]) == 4
        captured = capsys.readouterr()
        assert "missing" in captured.out
        assert "incomplete" in captured.err

    def test_mismatched_journals_rejected(self, capsys, tmp_path):
        from repro.cli import main

        base = ["sweep", "--epsilons", "0.3", "--machines", "2", "--n", "6",
                "--repetitions", "1", "--algorithms", "greedy"]
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(base + ["--journal", str(a)]) == 0
        assert main(base + ["--seed", "9", "--journal", str(b)]) == 0
        capsys.readouterr()
        assert main(["merge", str(a), str(b)]) == 2
        assert "different sweeps" in capsys.readouterr().err


class TestCacheCommand:
    def test_stats_and_clear(self, capsys, tmp_path):
        from repro.cli import main

        cache_dir = str(tmp_path / "brackets")
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries         : 0" in capsys.readouterr().out

        assert main(
            ["sweep", "--epsilons", "0.3", "--machines", "2", "--n", "8",
             "--repetitions", "2", "--cache-dir", cache_dir]
        ) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries         : 2" in out
        assert "schema version" in out

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 2 cached bracket(s)" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries         : 0" in capsys.readouterr().out


class TestRowsToCsv:
    def test_roundtrip_columns(self):
        from functools import partial

        from repro.workloads.execute import execute_sweep
        from repro.workloads.random_instances import random_instance
        from repro.workloads.sweep import SweepSpec, rows_to_csv

        spec = SweepSpec(
            epsilons=[0.3],
            machine_counts=[1],
            algorithms=["greedy"],
            workload=partial(random_instance, 6),
            repetitions=1,
        )
        text = rows_to_csv(execute_sweep(spec).rows)
        lines = text.strip().splitlines()
        assert len(lines) == 2
        assert len(lines[0].split(",")) == len(lines[1].split(","))


class TestPlanCommand:
    def test_solve_for_machines(self, capsys):
        from repro.cli import main

        assert main(["plan", "--target", "5.0", "--eps", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "fleet size m = 12" in out

    def test_solve_for_slack(self, capsys):
        from repro.cli import main

        assert main(["plan", "--target", "5.0", "--m", "3"]) == 0
        assert "slack eps" in capsys.readouterr().out

    def test_unachievable(self, capsys):
        from repro.cli import main

        assert main(["plan", "--target", "3.0", "--eps", "0.01"]) == 1
        assert "unachievable" in capsys.readouterr().out

    def test_requires_exactly_one_dimension(self, capsys):
        from repro.cli import main

        assert main(["plan", "--target", "5.0"]) == 2
        assert main(["plan", "--target", "5.0", "--eps", "0.1", "--m", "2"]) == 2


class TestFig1Svg:
    def test_fig1_svg_output(self, capsys, tmp_path):
        from repro.cli import main

        svg = tmp_path / "fig1.svg"
        code = main(
            ["fig1", "--machines", "1,2", "--points", "30", "--svg", str(svg)]
        )
        assert code == 0
        text = svg.read_text()
        assert text.startswith("<svg") and text.endswith("</svg>")
        assert "m = 2" in text
