"""Tests for the API reference generator."""

import pytest

from repro.tools.apidoc import (
    PUBLIC_MODULES,
    document_module,
    generate_api_markdown,
    main,
)


class TestApidoc:
    def test_all_public_modules_importable_and_documented(self):
        for name in PUBLIC_MODULES:
            section = document_module(name)
            assert section.startswith(f"## `{name}`")

    def test_full_document_structure(self):
        text = generate_api_markdown()
        assert text.startswith("# API reference")
        for name in PUBLIC_MODULES:
            assert f"## `{name}`" in text

    def test_core_symbols_present(self):
        text = generate_api_markdown(("repro.core",))
        for symbol in ("ThresholdPolicy", "c_bound", "corner_values"):
            assert symbol in text

    def test_signatures_rendered(self):
        text = generate_api_markdown(("repro.core",))
        assert "c_bound(epsilon" in text

    def test_main_writes_file(self, tmp_path, capsys):
        out = tmp_path / "api.md"
        assert main(["--out", str(out)]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_check_mode(self, tmp_path, capsys):
        out = tmp_path / "api.md"
        assert main(["--out", str(out), "--check"]) == 1  # missing file
        assert "stale" in capsys.readouterr().out
        assert main(["--out", str(out)]) == 0
        assert main(["--out", str(out), "--check"]) == 0
        out.write_text(out.read_text() + "\ndrift\n")
        assert main(["--out", str(out), "--check"]) == 1

    def test_committed_reference_is_current(self):
        """The repo's docs/api.md must match the live public surface."""
        import pathlib

        committed = (
            pathlib.Path(__file__).resolve().parents[2] / "docs" / "api.md"
        )
        assert committed.read_text() == generate_api_markdown()

    def test_no_dangling_exports(self):
        """Every __all__ name must resolve (guards against typo'd exports)."""
        import importlib

        for name in PUBLIC_MODULES:
            module = importlib.import_module(name)
            for symbol in getattr(module, "__all__", []):
                assert getattr(module, symbol, None) is not None, (name, symbol)
