"""Tests for ASCII plotting and CSV export."""

import numpy as np
import pytest

from repro.analysis.plotting import ascii_plot, series_to_csv


class TestAsciiPlot:
    def test_renders_series_glyphs(self):
        out = ascii_plot({"s1": ([1, 2, 3], [1, 2, 3])}, width=30, height=8)
        assert "o = s1" in out
        canvas = out.splitlines()[:-2]
        assert sum(line.count("o") for line in canvas) == 3

    def test_two_series_distinct_glyphs(self):
        out = ascii_plot(
            {"a": ([1, 2], [1, 2]), "b": ([1, 2], [2, 1])}, width=20, height=6
        )
        assert "o = a" in out and "x = b" in out

    def test_logx_labelled(self):
        out = ascii_plot({"s": ([0.01, 0.1, 1.0], [3, 2, 1])}, logx=True)
        assert "log10(x)" in out

    def test_markers_drawn(self):
        out = ascii_plot(
            {"s": ([0.0, 1.0], [0.0, 1.0])},
            markers={"s": [(0.5, 0.5)]},
            width=21,
            height=7,
        )
        assert "O" in out

    def test_title(self):
        out = ascii_plot({"s": ([0, 1], [0, 1])}, title="Fig")
        assert out.splitlines()[0] == "Fig"

    def test_empty(self):
        assert ascii_plot({"s": ([], [])}) == "(empty plot)"

    def test_nonfinite_filtered(self):
        out = ascii_plot({"s": ([1, 2, 3], [1.0, float("inf"), 2.0])})
        assert "y: [1, 2]" in out


class TestCsv:
    def test_roundtrip_structure(self):
        text = series_to_csv({"a": ([1, 2], [3, 4]), "b": ([1, 2], [5, 6])}, x_name="eps")
        lines = text.strip().splitlines()
        assert lines[0] == "eps,a,b"
        assert lines[1].split(",") == ["1", "3", "5"]

    def test_mismatched_grid_raises(self):
        with pytest.raises(ValueError, match="shared x-grid"):
            series_to_csv({"a": ([1, 2], [3, 4]), "b": ([1, 3], [5, 6])})

    def test_empty(self):
        assert series_to_csv({}) == "x\n"

    def test_float_precision(self):
        text = series_to_csv({"a": (np.array([0.123456789012]), np.array([1.0]))})
        assert "0.123456789" in text
