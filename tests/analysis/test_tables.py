"""Tests for table rendering."""

from repro.analysis.tables import format_markdown, format_table, render_rows


ROWS = [
    {"name": "a", "value": 1.23456, "flag": True, "miss": None},
    {"name": "bb", "value": float("inf"), "flag": False, "miss": 2},
]


class TestFormatTable:
    def test_contains_all_cells(self):
        out = format_table(ROWS)
        assert "1.2346" in out and "inf" in out and "yes" in out and "—" in out

    def test_column_subset_and_order(self):
        out = format_table(ROWS, columns=["value", "name"])
        header = out.splitlines()[0]
        assert header.index("value") < header.index("name")
        assert "flag" not in header

    def test_title(self):
        out = format_table(ROWS, title="T")
        assert out.splitlines()[0] == "T"

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_precision(self):
        out = format_table(ROWS, precision=1)
        assert "1.2" in out and "1.2346" not in out

    def test_nan_rendering(self):
        out = format_table([{"x": float("nan")}])
        assert "nan" in out


class TestMarkdown:
    def test_structure(self):
        out = format_markdown(ROWS)
        lines = out.splitlines()
        assert lines[0].startswith("| name")
        assert set(lines[1]) <= {"|", "-"}
        assert len(lines) == 2 + len(ROWS)

    def test_empty(self):
        assert format_markdown([]) == "(no rows)"


class TestRenderRows:
    def test_dispatch_plain(self):
        assert "---" in render_rows(ROWS)

    def test_dispatch_markdown_with_title(self):
        out = render_rows(ROWS, markdown=True, title="X")
        assert out.startswith("**X**")
