"""Tests for phase detection and the Fig. 1 series."""

import numpy as np
import pytest

from repro.analysis.phase import (
    Fig1Series,
    detect_transitions,
    fig1_series,
    log_grid,
    phase_profile,
)
from repro.core.params import c_bound, corner_values


class TestFig1Series:
    def test_default_curves(self):
        series = fig1_series((1, 2, 3, 4))
        assert [s.m for s in series] == [1, 2, 3, 4]

    def test_values_match_c_bound(self):
        s = fig1_series((2,), epsilons=np.array([0.1, 0.5]))[0]
        assert s.values[0] == pytest.approx(c_bound(0.1, 2))
        assert s.values[1] == pytest.approx(c_bound(0.5, 2))

    def test_transitions_count(self):
        series = fig1_series((1, 2, 3, 4))
        assert [len(s.transitions) for s in series] == [0, 1, 2, 3]

    def test_as_dict(self):
        s = fig1_series((2,), epsilons=np.array([0.1]))[0]
        d = s.as_dict()
        assert d["m"] == 2 and len(d["values"]) == 1

    def test_log_grid_range(self):
        grid = log_grid(0.01, 1.0, 50)
        assert grid[0] == pytest.approx(0.01)
        assert grid[-1] == pytest.approx(1.0)
        assert len(grid) == 50


class TestDetectTransitions:
    @pytest.mark.parametrize("m", [2, 3])
    def test_finds_analytic_corners(self, m):
        grid = log_grid(0.02, 1.0, 400)
        s = fig1_series((m,), epsilons=grid)[0]
        detected = detect_transitions(s.epsilons, s.values)
        analytic = [c for c in corner_values(m)[1:-1] if c > 0.02]
        assert len(detected) >= len(analytic)
        for corner in analytic:
            assert min(abs(d - corner) / corner for d in detected) < 0.08

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            detect_transitions(np.array([0.1, 0.2]), np.array([1.0, 2.0]))

    def test_smooth_curve_has_no_transitions(self):
        eps = log_grid(0.05, 1.0, 120)
        smooth = 2.0 + 1.0 / eps  # m=1 curve: single phase
        assert detect_transitions(eps, smooth, threshold=50.0) == []


class TestPhaseProfile:
    def test_k_nondecreasing_in_eps(self):
        rows = phase_profile(3)
        ks = [r["k"] for r in rows]
        assert ks == sorted(ks)

    def test_columns(self):
        rows = phase_profile(2, epsilons=np.array([0.1, 0.9]))
        assert rows[0]["k"] == 1 and rows[1]["k"] == 2
