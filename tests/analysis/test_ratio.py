"""Tests for empirical ratio measurement."""

import pytest

from repro.analysis.ratio import compare_algorithms, empirical_ratio
from repro.offline.bracket import opt_bracket
from repro.workloads import random_instance


@pytest.fixture
def inst():
    return random_instance(12, 2, 0.25, seed=13)


class TestEmpiricalRatio:
    def test_basic_fields(self, inst):
        rep = empirical_ratio("threshold", inst)
        assert rep.algorithm == "threshold"
        assert rep.accepted_load > 0
        assert rep.ratio_lower <= rep.ratio_upper + 1e-12

    def test_exact_bracket_collapses_ratio(self, inst):
        rep = empirical_ratio("threshold", inst)
        assert rep.opt.exact
        assert rep.ratio_lower == pytest.approx(rep.ratio_upper)

    def test_within_guarantee_certified(self, inst):
        rep = empirical_ratio("threshold", inst)
        assert rep.within_guarantee is True

    def test_unknown_algorithm_guarantee_none(self, inst):
        rep = empirical_ratio("threshold", inst)
        object.__setattr__(rep, "guarantee", None)
        assert rep.within_guarantee is None

    def test_bracket_reuse(self, inst):
        bracket = opt_bracket(inst)
        rep = empirical_ratio("greedy", inst, bracket=bracket)
        assert rep.opt is bracket

    def test_as_dict_keys(self, inst):
        d = empirical_ratio("greedy", inst).as_dict()
        assert {"algorithm", "load", "ratio_upper", "within"} <= set(d)


class TestCompare:
    def test_all_algorithms_within_guarantees(self, inst):
        reports = compare_algorithms(
            ["threshold", "greedy", "lee-style", "dasgupta-palis", "migration-greedy"],
            inst,
        )
        for rep in reports:
            assert rep.within_guarantee is True, rep.algorithm

    def test_shared_bracket(self, inst):
        reports = compare_algorithms(["threshold", "greedy"], inst)
        assert reports[0].opt is reports[1].opt
