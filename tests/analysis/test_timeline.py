"""Tests for utilization timelines."""

import numpy as np
import pytest

from repro.analysis.timeline import (
    busy_intervals,
    render_heat_strip,
    render_heatmap,
    utilization,
)
from repro.core.threshold import ThresholdPolicy
from repro.engine.simulator import simulate
from repro.model.instance import Instance
from repro.model.job import Job
from repro.model.schedule import Assignment, Schedule
from repro.workloads import random_instance


def _manual_schedule():
    jobs = [Job(0.0, 2.0, 10.0), Job(0.0, 4.0, 10.0)]
    inst = Instance(jobs, machines=2, epsilon=1.0)
    s = Schedule(instance=inst, algorithm="manual")
    s.assignments[0] = Assignment(0, 0, 0.0)  # m0 busy [0, 2)
    s.assignments[1] = Assignment(1, 1, 2.0)  # m1 busy [2, 6)
    return s


class TestUtilization:
    def test_known_fractions(self):
        s = _manual_schedule()
        series = utilization(s, windows=10, horizon=10.0)
        # m0 busy in [0,2): windows 0-1 fully busy, rest idle.
        assert np.allclose(series.per_machine[0][:2], 1.0)
        assert np.allclose(series.per_machine[0][2:], 0.0)
        # m1 busy in [2,6): windows 2..5.
        assert np.allclose(series.per_machine[1][2:6], 1.0)
        assert series.mean_utilization() == pytest.approx((2 + 4) / (2 * 10))

    def test_partial_window_overlap(self):
        s = _manual_schedule()
        series = utilization(s, windows=5, horizon=10.0)  # 2.0-wide windows
        # m1 busy [2,6): windows 1 and 2 fully.
        assert series.per_machine[1][1] == pytest.approx(1.0)
        assert series.per_machine[1][2] == pytest.approx(1.0)
        assert series.per_machine[1][3] == pytest.approx(0.0)

    def test_empty_schedule(self):
        inst = Instance([], machines=2, epsilon=0.5)
        s = Schedule(instance=inst)
        series = utilization(s, windows=4)
        assert series.peak == 0.0
        assert series.mean_utilization() == 0.0

    def test_windows_validation(self):
        with pytest.raises(ValueError):
            utilization(_manual_schedule(), windows=0)

    def test_values_in_unit_range(self):
        inst = random_instance(60, 3, 0.2, seed=6)
        s = simulate(ThresholdPolicy(), inst)
        series = utilization(s, windows=40)
        assert np.all(series.per_machine >= -1e-9)
        assert np.all(series.per_machine <= 1.0 + 1e-9)

    def test_peak_at_least_mean(self):
        inst = random_instance(60, 3, 0.2, seed=6)
        s = simulate(ThresholdPolicy(), inst)
        series = utilization(s)
        assert series.peak >= series.mean_utilization() - 1e-12


class TestRendering:
    def test_heat_strip_shape(self):
        series = utilization(_manual_schedule(), windows=12, horizon=10.0)
        strip = render_heat_strip(series, label="x")
        assert strip.count("|") == 2
        assert "mean=" in strip and "peak=" in strip

    def test_heatmap_rows(self):
        series = utilization(_manual_schedule(), windows=12, horizon=10.0)
        art = render_heatmap(series)
        assert art.count("\n") == 2  # two machines + fleet strip

    def test_busy_intervals_merged(self):
        s = _manual_schedule()
        ivs = busy_intervals(s, 0)
        assert len(ivs) == 1
        assert (ivs[0].start, ivs[0].end) == (0.0, 2.0)
