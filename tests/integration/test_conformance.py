"""Conformance suite: every registered algorithm on every workload family.

A policy implementation is *conformant* when, on any valid instance, it
(1) terminates, (2) decides every job exactly once, (3) never misses a
deadline or overlaps executions, and (4) never revises a decision — all
checked by the engine audits.  This suite sweeps the full algorithm
registry across the workload families and a (machines, slack) grid; it is
the regression net that lets new policies or engine changes land safely.
"""

from __future__ import annotations

import pytest

from repro.baselines.registry import ALGORITHMS, run_algorithm
from repro.engine.audit import audit_run
from repro.model.schedule import Schedule
from repro.workloads import (
    adversarial_like_instance,
    alternating_instance,
    burst_instance,
    cloud_instance,
    overload_instance,
    random_instance,
    staircase_instance,
    tight_slack_instance,
)

GRID = [(1, 0.1), (2, 0.25), (3, 0.6)]


def _families(m: int, eps: float):
    from repro.workloads.arrivals import batch_arrival_instance, mmpp_instance

    yield mmpp_instance(25, m, eps, seed=6)
    yield batch_arrival_instance(4, m, eps, seed=7)
    yield random_instance(25, m, eps, seed=1)
    yield tight_slack_instance(20, m, eps, seed=2, distribution="lognormal")
    yield burst_instance(2, 2 * m, machines=m, epsilon=eps, seed=3)
    yield cloud_instance(25, m, eps, seed=4)
    yield overload_instance(20, m, eps, seed=5)
    yield staircase_instance(machines=m, epsilon=eps)
    yield alternating_instance(2, machines=m, epsilon=eps)
    yield adversarial_like_instance(machines=m, epsilon=eps)


def _algorithms_for(m: int):
    for name, spec in ALGORITHMS.items():
        if spec.single_machine_only and m != 1:
            continue
        yield name


@pytest.mark.parametrize("m,eps", GRID)
def test_all_algorithms_conformant_on_all_families(m, eps):
    for inst in _families(m, eps):
        for name in _algorithms_for(m):
            result = run_algorithm(name, inst)
            detail = result.detail
            if isinstance(detail, Schedule):
                if "trace" in detail.meta:
                    audit_run(detail)  # immediate commitment: full audit
                else:
                    detail.audit()  # admission model: no decision trace
            else:
                detail.audit()
            assert 0.0 <= result.accepted_load <= inst.total_load + 1e-9, (
                name,
                inst.name,
            )


@pytest.mark.parametrize("m,eps", GRID)
def test_empty_instance_conformance(m, eps):
    from repro.model.instance import Instance

    empty = Instance([], machines=m, epsilon=eps)
    for name in _algorithms_for(m):
        result = run_algorithm(name, empty)
        assert result.accepted_load == 0.0


def test_single_job_instance_all_algorithms():
    from repro.model.instance import Instance
    from repro.model.job import Job

    inst = Instance([Job(0.0, 1.0, 5.0)], machines=1, epsilon=0.5)
    for name in _algorithms_for(1):
        result = run_algorithm(name, inst)
        # Everything except coin-flip policies must take the free job.
        if name not in ("random-admission", "classify-select"):
            assert result.accepted_count == 1, name


def test_extreme_slack_values_stable():
    """Tiny and huge slack must not break the parameter pipeline."""
    from repro.core.params import threshold_parameters

    for eps in (1e-10, 1e-6, 0.999999, 1.0):
        for m in (1, 2, 8, 64):
            params = threshold_parameters(min(eps, 1.0), m)
            params.verify()


def test_large_machine_count_simulation():
    inst = random_instance(120, 32, 0.2, seed=9)
    result = run_algorithm("threshold", inst)
    audit_run(result.detail)
    assert result.accepted_load > 0


@pytest.mark.parametrize("m,eps", GRID)
def test_delayed_engine_conformant_on_all_families(m, eps):
    from repro.engine.delayed import DelayedGreedyPolicy, simulate_delayed

    for inst in _families(m, eps):
        for delta in (0.0, eps / 2, eps):
            schedule = simulate_delayed(DelayedGreedyPolicy(), inst, delta)
            schedule.audit()
            assert len(schedule.assignments) + len(schedule.rejected) == len(inst)


@pytest.mark.parametrize("m,eps", GRID)
def test_admission_engine_conformant_on_all_families(m, eps):
    from repro.engine.admission import (
        AdmissionEddPolicy,
        AdmissionGreedyPolicy,
        AdmissionLazyPolicy,
        simulate_admission,
    )

    for inst in _families(m, eps):
        for policy in (
            AdmissionGreedyPolicy(),
            AdmissionEddPolicy(),
            AdmissionLazyPolicy(),
        ):
            schedule = simulate_admission(policy, inst)
            schedule.audit()
            assert len(schedule.assignments) + len(schedule.rejected) == len(inst)


@pytest.mark.parametrize("m,eps", GRID)
def test_penalty_engine_conformant_on_all_families(m, eps):
    from repro.engine.penalties import RevocableGreedyPolicy, simulate_with_penalties

    for inst in _families(m, eps):
        for phi in (0.0, 1.0):
            out = simulate_with_penalties(RevocableGreedyPolicy(), inst, phi)
            out.audit()
            assert out.net_value <= inst.total_load + 1e-9
