"""Smoke tests: every example script runs clean and prints its headline.

Examples are part of the public deliverable; these tests keep them green
by importing each script's ``main()`` (no subprocesses, so failures carry
real tracebacks).
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _run_example(name: str, capsys, argv: list[str] | None = None) -> str:
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run_example("quickstart.py", capsys)
        assert "within the paper's guarantee" in out
        assert "Decision trace" in out

    def test_cloud_admission(self, capsys):
        out = _run_example("cloud_admission.py", capsys)
        assert "per-service acceptance" in out
        assert "threshold" in out and "greedy" in out
        assert "fleet utilization" in out

    def test_adversary_duel(self, capsys):
        out = _run_example("adversary_duel.py", capsys)
        assert "forced_ratio" in out
        assert "phase 2 stops" in out

    def test_phase_transitions(self, capsys, tmp_path):
        csv = tmp_path / "fig1.csv"
        out = _run_example("phase_transitions.py", capsys, argv=["--csv", str(csv)])
        assert "Eq. (1) closed form" in out
        assert csv.exists()
        assert csv.read_text().startswith("epsilon,")

    def test_randomized_single_machine(self, capsys):
        out = _run_example("randomized_single_machine.py", capsys)
        assert "Corollary 1" in out
        assert "ln(1/eps)" in out

    def test_commitment_models(self, capsys):
        out = _run_example("commitment_models.py", capsys)
        assert "THRESHOLD" in out
        assert "offline optimum" in out

    def test_acceptance_profiles(self, capsys):
        out = _run_example("acceptance_profiles.py", capsys)
        assert "size quintile" in out
        assert "parallel sweep" in out

    def test_falsification_hunt(self, capsys):
        out = _run_example("falsification_hunt.py", capsys)
        assert "blind search" in out
        assert "covered-interval diagnostics" in out
        assert "ratio_bound" in out

    def test_paper_tour(self, capsys):
        out = _run_example("paper_tour.py", capsys)
        assert "Theorem 1" in out
        assert "commitment taxonomy" in out
        assert "no escape below c" in out

    def test_capacity_planning(self, capsys):
        out = _run_example("capacity_planning.py", capsys)
        assert "trade-off surface" in out
        assert "marginal value" in out
        assert "validation" in out
