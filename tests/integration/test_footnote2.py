"""Footnote 2 of the paper: greedy is constant-competitive for eps > 1.

"For example, a greedy algorithm that allocates the jobs in a non-delay
fashion always achieves a competitive ratio less than 3 for eps > 1."

We verify the claim with exact offline optima across machine counts,
seeds and slack values above 1, and also check the falsification search
cannot push greedy past 3 in that regime.  This is also the regime where
the library clamps Threshold's parameters to eps = 1 — the clamped
algorithm must stay within the eps = 1 guarantee there.
"""

import pytest

from repro.adversary.search import falsify
from repro.analysis.ratio import empirical_ratio
from repro.core.guarantees import theorem2_bound
from repro.workloads import random_instance, tight_slack_instance


class TestGreedyConstantForLargeSlack:
    @pytest.mark.parametrize("eps", [1.2, 2.0, 4.0])
    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_ratio_below_three_exact_opt(self, eps, m):
        for seed in range(3):
            inst = tight_slack_instance(11, m, eps, seed=seed)
            rep = empirical_ratio("greedy", inst)
            assert rep.opt.exact
            assert rep.ratio_upper < 3.0, (eps, m, seed, rep.ratio_upper)

    def test_search_cannot_break_three(self):
        r = falsify("greedy", machines=1, epsilon=1.5, budget=150, n_jobs=6, seed=0)
        assert r.best_ratio < 3.0

    def test_mixed_slack_above_one(self):
        inst = random_instance(12, 2, 1.5, seed=9, tight_fraction=0.5)
        rep = empirical_ratio("greedy", inst)
        assert rep.ratio_upper < 3.0


class TestThresholdClampRegime:
    @pytest.mark.parametrize("eps", [1.5, 3.0])
    def test_clamped_threshold_within_eps1_guarantee(self, eps):
        m = 2
        bound = theorem2_bound(1.0, m)  # the clamp target
        for seed in range(3):
            inst = tight_slack_instance(10, m, eps, seed=seed)
            rep = empirical_ratio("threshold", inst)
            assert rep.ratio_upper <= bound + 1e-9
