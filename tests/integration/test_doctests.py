"""Docstring smoke checks on the public surface.

Rather than littering the source with doctest-formatted examples, this
module asserts documentation *quality invariants* across the whole public
API: every exported symbol carries a docstring, every module has one, and
the README/usage snippets reference only names that actually exist.
"""

from __future__ import annotations

import importlib
import inspect
import pathlib
import re

import pytest

from repro.tools.apidoc import PUBLIC_MODULES

ROOT = pathlib.Path(__file__).resolve().parents[2]


class TestDocCoverage:
    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_every_export_documented(self, module_name):
        module = importlib.import_module(module_name)
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert inspect.getdoc(obj), f"{module_name}.{symbol} lacks a docstring"

    def test_public_classes_document_their_methods(self):
        from repro.core.params import BoundFunction
        from repro.model.machine import MachineState
        from repro.model.schedule import Schedule

        for cls in (BoundFunction, MachineState, Schedule):
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                assert inspect.getdoc(member), f"{cls.__name__}.{name} lacks a docstring"


class TestDocsReferenceRealNames:
    """Markdown docs must not reference non-existent modules/functions."""

    MODULE_RE = re.compile(r"`(repro(?:\.[a-z_]+)+)`")

    @pytest.mark.parametrize(
        "doc",
        [
            "README.md",
            "docs/usage.md",
            "docs/paper_map.md",
            "docs/algorithms.md",
            "docs/offline_opt.md",
            "docs/benchmarks.md",
        ],
    )
    def test_referenced_modules_importable(self, doc):
        text = (ROOT / doc).read_text()
        for match in sorted(set(self.MODULE_RE.findall(text))):
            # Strip trailing attribute names: import the longest importable
            # module prefix and resolve the rest via getattr.
            parts = match.split(".")
            obj = None
            for cut in range(len(parts), 0, -1):
                try:
                    obj = importlib.import_module(".".join(parts[:cut]))
                    break
                except ModuleNotFoundError:
                    continue
            assert obj is not None, f"{doc} references unimportable {match}"
            for attr in parts[cut:]:
                assert hasattr(obj, attr), f"{doc} references missing {match}"
                obj = getattr(obj, attr)

    def test_experiment_ids_have_bench_files(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for bench in set(re.findall(r"`(bench_[a-z0-9_]+\.py)`", text)):
            assert (ROOT / "benchmarks" / bench).exists(), bench

    def test_benchmarks_doc_covers_every_bench_file(self):
        """docs/benchmarks.md must have a row for every bench file."""
        text = (ROOT / "docs" / "benchmarks.md").read_text()
        for bench in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            assert f"`{bench.name}`" in text, f"{bench.name} missing a row"

    def test_readme_example_scripts_exist(self):
        text = (ROOT / "README.md").read_text()
        for script in set(re.findall(r"`([a-z_]+\.py)`", text)):
            if script in {"settings.py"}:
                continue
            assert (ROOT / "examples" / script).exists(), script
