"""Cross-model power ordering on structured instance families.

The §1 taxonomy implies a power ordering that should be visible on the
right instances.  These tests pin the orderings that hold *by
construction* on the bait-and-whale family (where waiting/revoking is
decisive), plus universal sanity relations on arbitrary instances.
"""

import pytest

from repro.baselines.registry import run_algorithm
from repro.engine.admission import AdmissionLazyPolicy, simulate_admission
from repro.engine.delayed import DelayedGreedyPolicy, simulate_delayed
from repro.engine.penalties import RevocableGreedyPolicy, simulate_with_penalties
from repro.offline.bracket import opt_bracket
from repro.workloads import alternating_instance, random_instance


class TestTrapOrdering:
    @pytest.mark.parametrize("eps", [0.1, 0.05])
    @pytest.mark.parametrize("m", [2, 3])
    def test_taxonomy_ordering_on_bait_and_whale(self, eps, m):
        inst = alternating_instance(3, machines=m, epsilon=eps)
        immediate_greedy = run_algorithm("greedy", inst).accepted_load
        threshold = run_algorithm("threshold", inst).accepted_load
        delayed = simulate_delayed(DelayedGreedyPolicy(), inst, eps).accepted_load
        admission = simulate_admission(AdmissionLazyPolicy(), inst).accepted_load
        free_revocation = simulate_with_penalties(
            RevocableGreedyPolicy(), inst, 0.0
        ).net_value
        opt_ub = opt_bracket(inst, force_bounds=True).upper

        # The §1 hierarchy, as measured on this family.
        assert immediate_greedy < threshold
        assert threshold <= delayed + 1e-9
        assert delayed < admission
        assert admission <= free_revocation + 1e-9
        assert free_revocation <= opt_ub + 1e-9

    @pytest.mark.parametrize("eps", [0.1, 0.05])
    def test_threshold_fraction_of_delayed(self, eps):
        # The paper's selling point: immediate commitment loses little to
        # delayed commitment once the threshold rule is used.
        inst = alternating_instance(3, machines=3, epsilon=eps)
        threshold = run_algorithm("threshold", inst).accepted_load
        delayed = simulate_delayed(DelayedGreedyPolicy(), inst, eps).accepted_load
        assert threshold >= 0.8 * delayed


class TestUniversalSanity:
    @pytest.mark.parametrize("seed", range(3))
    def test_no_model_beats_certified_opt(self, seed):
        inst = random_instance(25, 2, 0.25, seed=seed)
        opt_ub = opt_bracket(inst, force_bounds=True).upper
        values = [
            run_algorithm("greedy", inst).accepted_load,
            run_algorithm("threshold", inst).accepted_load,
            simulate_delayed(DelayedGreedyPolicy(), inst, 0.25).accepted_load,
            simulate_admission(AdmissionLazyPolicy(), inst).accepted_load,
            simulate_with_penalties(RevocableGreedyPolicy(), inst, 0.0).completed_load,
        ]
        for v in values:
            assert v <= opt_ub + 1e-6

    @pytest.mark.parametrize("seed", range(3))
    def test_free_revocation_dominates_infinite_penalty(self, seed):
        inst = random_instance(30, 2, 0.25, seed=10 + seed)
        free = simulate_with_penalties(RevocableGreedyPolicy(), inst, 0.0).net_value
        frozen = simulate_with_penalties(RevocableGreedyPolicy(), inst, 1e12).net_value
        assert free >= frozen - 1e-9
