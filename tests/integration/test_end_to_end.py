"""Integration tests: the full pipeline the benchmarks rely on.

Each test exercises several subsystems together — generator, engine,
algorithms, offline solvers, adversary, analysis — the way the benchmark
harness composes them.
"""

import math

import pytest

from repro import (
    ThresholdPolicy,
    c_bound,
    compare_algorithms,
    duel,
    run_algorithm,
    simulate,
    theorem2_bound,
)
from repro.adversary.analysis import enumerate_decision_tree
from repro.core.guarantees import guarantee_for
from repro.core.randomized import expected_load_classify_select
from repro.offline.bracket import opt_bracket
from repro.workloads import (
    adversarial_like_instance,
    alternating_instance,
    cloud_instance,
    random_instance,
)
from repro.workloads.execute import execute_sweep
from repro.workloads.sweep import SweepSpec, aggregate_rows


class TestGuaranteesHoldEmpirically:
    """Theorem 2 as a certified empirical statement (small instances)."""

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("eps,m", [(0.1, 2), (0.3, 2), (0.2, 3)])
    def test_threshold_within_theorem2(self, seed, eps, m):
        inst = random_instance(12, m, eps, seed=seed)
        bracket = opt_bracket(inst)
        s = simulate(ThresholdPolicy(), inst)
        if s.accepted_load > 0:
            ratio = bracket.upper / s.accepted_load
            assert ratio <= theorem2_bound(eps, m) + 1e-6

    @pytest.mark.parametrize("seed", range(3))
    def test_all_algorithms_within_their_guarantees(self, seed):
        inst = random_instance(12, 2, 0.25, seed=100 + seed)
        reports = compare_algorithms(
            ["threshold", "greedy", "lee-style", "dasgupta-palis", "migration-greedy"],
            inst,
        )
        for rep in reports:
            assert rep.within_guarantee, rep.algorithm


class TestAdversaryClosesTheLoop:
    """Theorem 1 + Theorem 2 together: the forced ratio brackets c."""

    @pytest.mark.parametrize("m,eps", [(1, 0.2), (2, 0.2), (3, 0.2), (4, 0.3)])
    def test_threshold_sandwiched(self, m, eps):
        result = duel(ThresholdPolicy(), m=m, epsilon=eps)
        c = c_bound(eps, m)
        assert c * 0.995 <= result.forced_ratio <= theorem2_bound(eps, m) + 0.01

    def test_decision_tree_minimum_is_c(self):
        outs = enumerate_decision_tree(2, 0.15)
        best_for_adversary = min(o.forced_ratio for o in outs)
        assert best_for_adversary == pytest.approx(c_bound(0.15, 2), rel=5e-3)


class TestAdversarialWorkloads:
    def test_threshold_beats_greedy_on_alternating(self):
        inst = alternating_instance(4, machines=2, epsilon=0.1)
        th = run_algorithm("threshold", inst).accepted_load
        gr = run_algorithm("greedy", inst).accepted_load
        assert th > gr

    def test_static_adversarial_instance_hard_for_greedy(self):
        inst = adversarial_like_instance(machines=3, epsilon=0.2)
        bracket = opt_bracket(inst, exact_limit=0)
        gr = run_algorithm("greedy", inst)
        assert bracket.upper / gr.accepted_load > 1.5


class TestCloudScenario:
    def test_end_to_end_cloud_run(self):
        inst = cloud_instance(120, 4, 0.1, seed=3)
        reports = compare_algorithms(["threshold", "greedy", "lee-style"], inst)
        for rep in reports:
            assert rep.accepted_load > 0
            assert math.isfinite(rep.ratio_upper)

    def test_acceptance_rate_sane_under_overload(self):
        inst = cloud_instance(150, 2, 0.1, seed=5, utilization=3.0)
        r = run_algorithm("greedy", inst)
        assert 0.05 < r.acceptance_rate < 0.95


class TestRandomizedAlgorithm:
    def test_expected_ratio_below_certified_bound(self):
        eps = 0.05
        inst = random_instance(40, 1, eps, seed=17)
        bracket = opt_bracket(inst, force_bounds=True)
        expected, _ = expected_load_classify_select(inst)
        if expected > 0:
            ratio = bracket.upper / expected
            assert ratio <= guarantee_for("classify-select", eps, 1) + 1e-6


class TestSweepPipeline:
    def test_sweep_to_aggregation(self):
        spec = SweepSpec(
            epsilons=[0.2],
            machine_counts=[2],
            algorithms=["threshold", "greedy"],
            workload=lambda m, e, s: random_instance(10, m, e, seed=s),
            repetitions=2,
        )
        agg = aggregate_rows(execute_sweep(spec).rows)
        assert len(agg) == 2
        for entry in agg:
            assert entry["mean_ratio_upper"] >= 1.0 - 1e-9
