"""The sealed decision log: durability, tamper detection, offline replay."""

import json

import pytest

from repro.engine.controller import open_session
from repro.serve.snapshotter import (
    DecisionJournal,
    DecisionJournalError,
    load_decision_journal,
    replay_decision_log,
    service_fingerprint,
    verify_decision_log,
)
from repro.workloads.arrivals import mmpp_instance
from repro.workloads.random_instances import random_instance


def _serve_instance(path, inst, algorithm="threshold", **kwargs):
    """Drive *inst* through a live session, journaling every decision."""
    service = service_fingerprint(
        algorithm, inst.machines, inst.epsilon, kwargs, inst.name
    )
    session = open_session(
        algorithm, machines=inst.machines, epsilon=inst.epsilon,
        name=inst.name, **kwargs,
    )
    journal = DecisionJournal.create(path, service)
    for i, job in enumerate(inst.jobs):
        decision = session.offer(job)
        journal.record_decision(i, session.jobs[i], decision)
    return session, journal, service


class TestJournalLifecycle:
    def test_create_serve_seal_load(self, tmp_path):
        path = tmp_path / "log.jsonl"
        inst = random_instance(25, 2, 0.4, seed=1)
        _, journal, _ = _serve_instance(path, inst)
        journal.seal()
        journal.close()
        state = load_decision_journal(path)
        assert state.sealed
        assert len(state.jobs) == len(state.decisions) == 25
        assert state.instance().to_json() == inst.to_json()

    def test_unsealed_log_loads_but_reports_it(self, tmp_path):
        path = tmp_path / "log.jsonl"
        inst = random_instance(10, 2, 0.4, seed=2)
        _, journal, _ = _serve_instance(path, inst)
        journal.close()  # hard stop: no seal
        state = load_decision_journal(path)
        assert not state.sealed and len(state.decisions) == 10

    def test_create_refuses_to_clobber(self, tmp_path):
        path = tmp_path / "log.jsonl"
        service = service_fingerprint("threshold", 2, 0.4)
        DecisionJournal.create(path, service).close()
        with pytest.raises(DecisionJournalError, match="already exists"):
            DecisionJournal.create(path, service)

    def test_empty_and_headerless_logs_fail(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(DecisionJournalError, match="empty"):
            load_decision_journal(empty)
        headerless = tmp_path / "headerless.jsonl"
        headerless.write_text('{"kind": "decision", "seq": 0}\n' * 2)
        with pytest.raises(DecisionJournalError, match="before header"):
            load_decision_journal(headerless)


class TestCrashRecovery:
    def test_truncated_tail_is_chopped_on_resume(self, tmp_path):
        path = tmp_path / "log.jsonl"
        inst = random_instance(12, 2, 0.4, seed=3)
        _, journal, service = _serve_instance(path, inst)
        journal.close()
        # hard kill mid-append: the last line is half-written
        data = path.read_bytes()
        path.write_bytes(data[:-17])
        resumed, state = DecisionJournal.resume(path, service)
        assert state.truncated_tail
        assert len(state.decisions) == 11  # the torn decision is re-served
        # the file itself was repaired: a fresh load sees no truncation
        resumed.close()
        assert not load_decision_journal(path).truncated_tail

    def test_resume_restores_identical_session(self, tmp_path):
        path = tmp_path / "log.jsonl"
        inst = mmpp_instance(40, machines=2, epsilon=0.5, seed=4)
        session, journal, service = _serve_instance(path, inst)
        journal.close()
        _, state = DecisionJournal.resume(path, service)
        restored = state.restore_session(verify=True)
        assert restored.now == session.now
        assert restored.loads() == session.loads()
        assert [d.accepted for d in restored.decisions] == [
            d.accepted for d in session.decisions
        ]

    def test_resume_rejects_mismatched_service(self, tmp_path):
        path = tmp_path / "log.jsonl"
        inst = random_instance(5, 2, 0.4, seed=5)
        _, journal, _ = _serve_instance(path, inst)
        journal.close()
        other = service_fingerprint("greedy", 2, 0.4, name=inst.name)
        with pytest.raises(DecisionJournalError, match="different service"):
            DecisionJournal.resume(path, other)

    def test_resumed_journal_extends_the_same_stream(self, tmp_path):
        path = tmp_path / "log.jsonl"
        inst = random_instance(8, 2, 0.4, seed=6)
        session, journal, service = _serve_instance(path, inst)
        journal.close()
        resumed, state = DecisionJournal.resume(path, service)
        live = state.restore_session()
        job = live.jobs[-1]
        from repro.model.job import Job

        extra = Job(job.release + 1.0, 1.0, job.release + 3.0)
        decision = live.offer(extra)
        resumed.record_decision(len(state.decisions), live.jobs[-1], decision)
        resumed.seal()
        resumed.close()
        final = load_decision_journal(path)
        assert final.sealed and len(final.decisions) == 9


class TestTamperDetection:
    def _tamper(self, path, predicate, mutate):
        lines = path.read_text().splitlines()
        for i, line in enumerate(lines):
            record = json.loads(line)
            if predicate(record):
                lines[i] = json.dumps(mutate(record))
                break
        path.write_text("\n".join(lines) + "\n")

    def test_mid_file_bit_flip_is_detected(self, tmp_path):
        path = tmp_path / "log.jsonl"
        inst = random_instance(10, 2, 0.4, seed=7)
        _, journal, _ = _serve_instance(path, inst)
        journal.seal()
        journal.close()

        def flip(record):
            record["dec"][0] = not record["dec"][0]
            return record

        self._tamper(path, lambda r: r.get("seq") == 3, flip)
        with pytest.raises(DecisionJournalError, match="CRC mismatch"):
            load_decision_journal(path)

    def test_reordered_decisions_break_the_sequence(self, tmp_path):
        path = tmp_path / "log.jsonl"
        inst = random_instance(6, 2, 0.4, seed=8)
        _, journal, _ = _serve_instance(path, inst)
        journal.close()
        lines = path.read_text().splitlines()
        lines[1], lines[2] = lines[2], lines[1]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DecisionJournalError, match="sequence broken"):
            load_decision_journal(path)

    def test_seal_detects_stream_tampering(self, tmp_path):
        path = tmp_path / "log.jsonl"
        inst = random_instance(6, 2, 0.4, seed=9)
        _, journal, _ = _serve_instance(path, inst)
        journal.seal()
        journal.close()
        # Rewrite a record *consistently* (payload + CRC) — only the
        # seal's stream hash can catch this class of tampering.
        from repro.serve.snapshotter import decision_crc

        def rewrite(record):
            record["job"][1] = record["job"][1] * 2.0
            record["crc"] = decision_crc(
                record["seq"], record["job"], record["dec"]
            )
            return record

        self._tamper(path, lambda r: r.get("seq") == 0, rewrite)
        with pytest.raises(DecisionJournalError, match="stream hash mismatch"):
            load_decision_journal(path)


class TestOfflineReplay:
    @pytest.mark.parametrize("algorithm, kwargs", [
        ("threshold", {}),
        ("greedy", {}),
        ("random-admission", {"rng": 17}),
    ])
    def test_served_log_replays_bit_identical(self, tmp_path, algorithm, kwargs):
        path = tmp_path / "log.jsonl"
        inst = mmpp_instance(60, machines=2, epsilon=0.5, seed=10)
        _, journal, _ = _serve_instance(path, inst, algorithm, **kwargs)
        journal.seal()
        journal.close()
        ok, detail = verify_decision_log(path)
        assert ok, detail
        assert "bit-identical" in detail

    def test_replay_returns_the_batch_schedule(self, tmp_path):
        path = tmp_path / "log.jsonl"
        inst = random_instance(20, 2, 0.4, seed=11)
        session, journal, _ = _serve_instance(path, inst)
        journal.close()
        schedule = replay_decision_log(path)
        assert schedule.to_json() == session.close().to_json()

    def test_divergent_log_fails_verification(self, tmp_path):
        path = tmp_path / "log.jsonl"
        inst = random_instance(10, 2, 0.4, seed=12)
        session = open_session(
            "threshold", machines=2, epsilon=0.4, name=inst.name
        )
        service = service_fingerprint(
            "threshold", 2, 0.4, name=inst.name
        )
        journal = DecisionJournal.create(path, service)
        for i, job in enumerate(inst.jobs):
            decision = session.offer(job)
            if i == 4:  # journal a lie: flip one decision
                from repro.engine.policy import Decision

                decision = (
                    Decision.reject() if decision.accepted
                    else Decision.accept(machine=0, start=job.release)
                )
            journal.record_decision(i, session.jobs[i], decision)
        journal.close()
        ok, detail = verify_decision_log(path)
        assert not ok and "diverged" in detail
