"""Wire-protocol encode/decode and job normalisation rules."""

import math

import pytest

from repro.engine.policy import Decision
from repro.model.job import Job
from repro.serve.protocol import (
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    decision_message,
    decode_line,
    encode_line,
    error_message,
    job_from_message,
)


class TestLineCodec:
    def test_round_trip(self):
        message = {"op": "offer", "job": {"processing": 2.0}, "tag": 7}
        assert decode_line(encode_line(message)) == message

    def test_lines_are_newline_terminated_utf8(self):
        raw = encode_line({"op": "ping"})
        assert raw.endswith(b"\n") and raw.count(b"\n") == 1

    @pytest.mark.parametrize(
        "raw, match",
        [
            (b"\xff\xfe", "not UTF-8"),
            (b"not json\n", "not valid JSON"),
            (b"[1, 2]\n", "JSON object"),
            (b'{"op": "frobnicate"}\n', "unknown op"),
            (b'{"noop": true}\n', "unknown op"),
        ],
    )
    def test_garbage_raises_protocol_error(self, raw, match):
        with pytest.raises(ProtocolError, match=match):
            decode_line(raw)

    def test_every_documented_op_decodes(self):
        for op in OPS:
            assert decode_line(encode_line({"op": op}))["op"] == op

    def test_nan_is_rejected_at_encode_time(self):
        with pytest.raises(ValueError):
            encode_line({"op": "offer", "x": math.nan})


class TestJobNormalisation:
    def test_absolute_form_passes_through(self):
        job = job_from_message(
            {"release": 1.5, "processing": 2.0, "deadline": 6.0},
            clock=99.0, epsilon=0.5,
        )
        assert (job.release, job.processing, job.deadline) == (1.5, 2.0, 6.0)
        assert job.weight is None

    def test_relative_form_is_stamped_with_clock(self):
        job = job_from_message(
            {"processing": 2.0, "slack": 0.25}, clock=10.0, epsilon=0.5
        )
        assert job.release == 10.0
        assert job.deadline == 10.0 + 1.25 * 2.0

    def test_relative_form_defaults_slack_to_epsilon(self):
        job = job_from_message({"processing": 4.0}, clock=0.0, epsilon=0.5)
        assert job.deadline == 6.0

    def test_weight_is_optional_and_coerced(self):
        job = job_from_message(
            {"processing": 1.0, "weight": "2.5"}, clock=0.0, epsilon=0.5
        )
        assert job.weight == 2.5

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            "job",
            {},
            {"processing": "fast"},
            {"processing": 1.0, "deadline": "never"},
            {"processing": 1.0, "slack": "lots"},
        ],
    )
    def test_bad_payloads_raise_protocol_error(self, payload):
        with pytest.raises(ProtocolError):
            job_from_message(payload, clock=0.0, epsilon=0.5)

    def test_infeasible_job_raises_protocol_error(self):
        # deadline before release+processing violates the Job invariant
        with pytest.raises(ProtocolError):
            job_from_message(
                {"release": 0.0, "processing": 5.0, "deadline": 1.0},
                clock=0.0, epsilon=0.5,
            )


class TestMessages:
    def test_decision_message_shape(self):
        job = Job(1.0, 2.0, 5.0)
        message = decision_message(
            3, job.with_id(3), Decision.accept(machine=1, start=1.0),
            [0.5, 2.0], tag="req-9",
        )
        assert message["ok"] and message["kind"] == "decision"
        assert message["seq"] == 3 and message["job_id"] == 3
        assert message["accepted"] and message["machine"] == 1
        assert message["loads"] == [0.5, 2.0] and message["tag"] == "req-9"

    def test_rejection_has_null_assignment(self):
        job = Job(0.0, 1.0, 2.0).with_id(0)
        message = decision_message(0, job, Decision.reject(), [0.0])
        assert message["accepted"] is False
        assert message["machine"] is None and message["start"] is None
        assert "tag" not in message

    def test_error_message_shape(self):
        message = error_message("bad job", tag=1)
        assert message == {
            "ok": False, "kind": "error", "error": "bad job", "tag": 1,
        }

    def test_protocol_version_is_stable(self):
        assert PROTOCOL_VERSION == 1
