"""The asyncio admission server: transports, streaming, crash recovery.

In-process tests drive :class:`AdmissionServer` inside ``asyncio.run``
(the suite has no async test runner, deliberately — each test owns its
loop).  The chaos half of the file spawns real ``repro serve``
subprocesses, SIGKILLs one mid-stream, resumes from the decision journal
and proves the post-resume decisions are bit-identical to an
uninterrupted run.
"""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import urllib.request

import pytest

from repro.serve.loadgen import drive_instance, percentile, run_bench
from repro.serve.protocol import decode_line, encode_line
from repro.serve.server import AdmissionServer, ServeConfig
from repro.serve.snapshotter import (
    load_decision_journal,
    verify_decision_log,
)
from repro.workloads.arrivals import mmpp_instance
from repro.workloads.random_instances import random_instance


async def _request(host: str, port: int, *messages: dict) -> list[dict]:
    """One socket connection, n request lines, n reply lines."""
    reader, writer = await asyncio.open_connection(host, port)
    replies = []
    try:
        for message in messages:
            writer.write(encode_line(message))
            await writer.drain()
            replies.append(json.loads(await reader.readline()))
    finally:
        writer.close()
        await writer.wait_closed()
    return replies


def _with_server(config: ServeConfig, body) -> AdmissionServer:
    """Start a server, run ``await body(server)``, drain gracefully."""

    async def main() -> AdmissionServer:
        server = AdmissionServer(config)
        await server.start()
        try:
            await body(server)
        finally:
            server.request_shutdown()
            await server.serve_until_shutdown()
        return server

    return asyncio.run(main())


class TestSocketTransport:
    def test_offer_stats_ping_round_trip(self):
        async def body(server):
            replies = await _request(
                "127.0.0.1", server.socket_port,
                {"op": "ping"},
                {"op": "offer", "tag": "a",
                 "job": {"release": 0.0, "processing": 1.0, "deadline": 2.0}},
                {"op": "offer", "job": {"processing": 1.0, "slack": 1.0}},
                {"op": "stats"},
            )
            pong, first, relative, stats = replies
            assert pong["kind"] == "pong"
            assert first["ok"] and first["seq"] == 0 and first["tag"] == "a"
            assert first["accepted"] is True and len(first["loads"]) == 2
            # relative job was stamped at the session clock (0.0)
            assert relative["t"] == 0.0
            assert stats["jobs"] == 2 and stats["machines"] == 2

        _with_server(ServeConfig(machines=2, epsilon=0.5), body)

    def test_bad_requests_keep_the_connection_alive(self):
        async def body(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.socket_port
            )
            try:
                writer.write(b"this is not json\n")
                writer.write(encode_line({"op": "offer", "job": {}}))
                writer.write(encode_line(
                    {"op": "offer",
                     "job": {"release": 0.0, "processing": 1.0,
                             "deadline": 2.0}},
                ))
                await writer.drain()
                garbage = json.loads(await reader.readline())
                badjob = json.loads(await reader.readline())
                good = json.loads(await reader.readline())
            finally:
                writer.close()
                await writer.wait_closed()
            assert not garbage["ok"] and "JSON" in garbage["error"]
            assert not badjob["ok"] and "processing" in badjob["error"]
            assert good["ok"] and good["seq"] == 0

        _with_server(ServeConfig(machines=1, epsilon=0.5), body)

    def test_stale_release_is_an_error_not_a_crash(self):
        async def body(server):
            replies = await _request(
                "127.0.0.1", server.socket_port,
                {"op": "offer",
                 "job": {"release": 5.0, "processing": 1.0, "deadline": 7.0}},
                {"op": "offer",
                 "job": {"release": 1.0, "processing": 1.0, "deadline": 3.0}},
                {"op": "stats"},
            )
            assert replies[0]["ok"]
            assert not replies[1]["ok"]
            assert replies[2]["jobs"] == 1  # the stale offer left no trace

        _with_server(ServeConfig(machines=1, epsilon=0.5), body)

    def test_watch_streams_decisions_to_subscribers(self):
        events = []

        async def body(server):
            watch_reader, watch_writer = await asyncio.open_connection(
                "127.0.0.1", server.socket_port
            )
            watch_writer.write(encode_line({"op": "watch"}))
            await watch_writer.drain()
            ack = json.loads(await watch_reader.readline())
            assert ack["kind"] == "watch"
            await _request(
                "127.0.0.1", server.socket_port,
                {"op": "offer",
                 "job": {"release": 0.0, "processing": 1.0, "deadline": 2.0}},
                {"op": "offer",
                 "job": {"release": 1.0, "processing": 1.0, "deadline": 3.0}},
            )
            for _ in range(2):
                events.append(
                    json.loads(await asyncio.wait_for(
                        watch_reader.readline(), timeout=5.0))
                )
            watch_writer.close()
            await watch_writer.wait_closed()

        _with_server(ServeConfig(machines=1, epsilon=0.5), body)
        assert [e["seq"] for e in events] == [0, 1]
        assert all(e["kind"] == "decision" for e in events)


class TestHttpTransport:
    def test_routes(self):
        async def body(server):
            base = f"http://127.0.0.1:{server.http_port}"

            def fetch(path, data=None, method=None):
                req = urllib.request.Request(
                    base + path, data=data, method=method
                )
                try:
                    with urllib.request.urlopen(req, timeout=5) as response:
                        return response.status, json.loads(response.read())
                except urllib.error.HTTPError as err:
                    return err.code, json.loads(err.read())

            loop = asyncio.get_running_loop()
            status, health = await loop.run_in_executor(
                None, fetch, "/healthz"
            )
            assert status == 200 and health["ok"]
            offer = json.dumps({
                "job": {"release": 0.0, "processing": 1.0, "deadline": 2.0},
                "tag": "http-1",
            }).encode()
            status, decision = await loop.run_in_executor(
                None, lambda: fetch("/offer", offer, "POST")
            )
            assert status == 200 and decision["accepted"]
            assert decision["tag"] == "http-1"
            status, bad = await loop.run_in_executor(
                None, lambda: fetch("/offer", b'{"job": {}}', "POST")
            )
            assert status == 400 and not bad["ok"]
            status, stats = await loop.run_in_executor(None, fetch, "/stats")
            assert status == 200 and stats["jobs"] == 1
            status, missing = await loop.run_in_executor(
                None, fetch, "/nowhere"
            )
            assert status == 404

        _with_server(ServeConfig(machines=1, epsilon=0.5), body)


class TestLoadGenerator:
    def test_run_bench_measures_and_journals(self, tmp_path):
        log = tmp_path / "bench.jsonl"
        inst = mmpp_instance(120, machines=2, epsilon=0.5, seed=20)
        config = ServeConfig(
            machines=2, epsilon=0.5, name=inst.name, decision_log=str(log)
        )
        report, server = run_bench(config, inst, window=16)
        assert report.jobs == 120 and report.errors == 0
        assert report.accepted + report.rejected == 120
        assert report.decisions_per_second > 0
        assert 0.0 < report.latency_p50_ms <= report.latency_p99_ms
        assert report.latency_p99_ms <= report.latency_p999_ms
        assert report.drain_seconds is not None
        assert len(report.final_loads) == 2
        ok, detail = verify_decision_log(log)
        assert ok, detail
        assert load_decision_journal(log).sealed

    def test_percentile_is_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0
        assert percentile([], 50) == 0.0

    def test_drive_instance_against_plain_server(self):
        inst = random_instance(30, 2, 0.4, seed=21)

        async def main():
            server = AdmissionServer(ServeConfig(machines=2, epsilon=0.4))
            await server.start()
            try:
                return await drive_instance(
                    "127.0.0.1", server.socket_port, inst, window=8
                )
            finally:
                server.request_shutdown()
                await server.serve_until_shutdown()

        report = asyncio.run(main())
        assert report.accepted + report.rejected == 30


class TestGracefulShutdown:
    def test_socket_shutdown_op_seals_the_journal(self, tmp_path):
        log = tmp_path / "log.jsonl"

        async def body(server):
            replies = await _request(
                "127.0.0.1", server.socket_port,
                {"op": "offer",
                 "job": {"release": 0.0, "processing": 1.0, "deadline": 2.0}},
                {"op": "shutdown"},
            )
            assert replies[1] == {"ok": True, "kind": "shutdown"}

        server = _with_server(
            ServeConfig(machines=1, epsilon=0.5, decision_log=str(log)), body
        )
        assert server.drain_seconds is not None
        state = load_decision_journal(log)
        assert state.sealed and len(state.decisions) == 1

    def test_lingering_connection_is_cancelled_silently(self, tmp_path):
        """A client that never disconnects must not block or dirty shutdown.

        The drain deadline cancels its handler; the cancel has to be
        absorbed (no loop-exception-handler noise, no unsealed journal).
        """
        log = tmp_path / "log.jsonl"
        loop_errors = []

        async def main():
            server = AdmissionServer(ServeConfig(
                machines=1, epsilon=0.5, decision_log=str(log),
                drain_grace=0.2,
            ))
            await server.start()
            asyncio.get_running_loop().set_exception_handler(
                lambda loop, ctx: loop_errors.append(ctx)
            )
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.socket_port
            )
            writer.write(encode_line(
                {"op": "offer",
                 "job": {"release": 0.0, "processing": 1.0, "deadline": 2.0}},
            ))
            await writer.drain()
            assert json.loads(await reader.readline())["ok"]
            # ... and then the client just sits there, connection open.
            server.request_shutdown()
            await server.serve_until_shutdown()
            await asyncio.sleep(0.05)  # let any stray callbacks fire
            writer.close()
            return server

        server = asyncio.run(main())
        assert server.drain_seconds < 2.0
        assert loop_errors == []
        assert server.drain_timed_out is False
        state = load_decision_journal(log)
        assert state.sealed and len(state.decisions) == 1

    def test_drain_timeout_bounds_a_client_that_stopped_reading(self, tmp_path):
        """--drain-timeout: a stalled *reader* cannot hang shutdown.

        Cancellation alone cannot unstick a handler that is flushing a
        write buffer the peer will never read (``wait_closed`` waits for
        the flush).  The timeout aborts the stalled transport, seals the
        journal, and shutdown completes cleanly.
        """
        log = tmp_path / "log.jsonl"
        loop_errors = []

        async def main():
            server = AdmissionServer(ServeConfig(
                machines=1, epsilon=0.5, decision_log=str(log),
                drain_grace=0.1, drain_timeout=0.3,
            ))
            await server.start()
            asyncio.get_running_loop().set_exception_handler(
                lambda loop, ctx: loop_errors.append(ctx)
            )
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.socket_port
            )
            writer.write(encode_line(
                {"op": "offer",
                 "job": {"release": 0.0, "processing": 1.0, "deadline": 2.0}},
            ))
            await writer.drain()
            assert json.loads(await reader.readline())["ok"]
            # Pipeline thousands of large requests and never read another
            # byte: the replies (bad-job errors echo the 8 KiB tag, and
            # are never journaled) overflow the socket buffers and wedge
            # the server handler inside ``writer.drain()``.  (No ``drain``
            # on the client side either — it would block the same way.)
            tag = "x" * 8192
            for _ in range(2000):
                writer.write(encode_line({"op": "offer", "job": {},
                                          "tag": tag}))
            # Wait until the server handler is actually wedged: its
            # transport holding user-space buffered bytes means the
            # kernel buffers are full and ``drain()`` is blocked.
            for _ in range(200):
                if any(
                    w.transport is not None
                    and w.transport.get_write_buffer_size() > 0
                    for w in server._writers
                ):
                    break
                await asyncio.sleep(0.025)
            server.request_shutdown()
            await asyncio.wait_for(server.serve_until_shutdown(), timeout=5.0)
            await asyncio.sleep(0.05)  # let any stray callbacks fire
            writer.close()
            return server

        server = asyncio.run(main())
        assert server.drain_timed_out is True
        assert server.drain_seconds < 3.0
        assert loop_errors == []
        state = load_decision_journal(log)
        assert state.sealed and len(state.decisions) == 1


# ---------------------------------------------------------------------------
# Chaos: SIGKILL a live server mid-stream, resume, prove bit-identity
# ---------------------------------------------------------------------------


def _spawn_server(log_path, *extra):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--m", "2", "--eps", "0.5",
         "--decision-log", str(log_path), *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
    )
    announcement = json.loads(proc.stdout.readline())
    assert announcement["kind"] == "listening"
    return proc, announcement


def _offer_jobs(port, jobs):
    """Offer jobs over a fresh socket; returns the decision payloads."""
    decisions = []
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        fh = sock.makefile("rwb")
        for job in jobs:
            fh.write(encode_line({
                "op": "offer",
                "job": {"release": job.release, "processing": job.processing,
                        "deadline": job.deadline},
            }))
            fh.flush()
            reply = json.loads(fh.readline())
            assert reply["ok"], reply
            decisions.append(
                [reply["accepted"], reply["machine"], reply["start"]]
            )
    return decisions


class TestChaosKillResume:
    """Satellite: SIGKILL mid-stream, resume, bit-identical remainder."""

    def test_kill_resume_decisions_bit_identical(self, tmp_path):
        inst = mmpp_instance(40, machines=2, epsilon=0.5, seed=30)
        cut = 15

        # Reference: one uninterrupted server over the full stream.
        ref_log = tmp_path / "uninterrupted.jsonl"
        proc, announcement = _spawn_server(ref_log)
        try:
            reference = _offer_jobs(announcement["socket_port"], inst.jobs)
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=20) == 0

        # Chaos run: serve `cut` jobs, SIGKILL (no drain, no seal), resume
        # from the journal, serve the remainder.
        log = tmp_path / "chaos.jsonl"
        proc, announcement = _spawn_server(log)
        try:
            before = _offer_jobs(
                announcement["socket_port"], inst.jobs[:cut]
            )
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=20)
            assert not load_decision_journal(log).sealed  # hard death

            proc, announcement = _spawn_server(log, "--resume")
            assert announcement["resumed_decisions"] == cut
            after = _offer_jobs(
                announcement["socket_port"], inst.jobs[cut:]
            )
        finally:
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=20) == 0

        # Every decision — before the kill and after the resume — matches
        # the uninterrupted run exactly.
        assert before + after == reference

        # And both journals replay bit-identical through the batch engine.
        for path in (ref_log, log):
            ok, detail = verify_decision_log(path)
            assert ok, detail
        assert load_decision_journal(log).sealed

    def test_resume_without_log_fails_cleanly(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--m", "2",
             "--eps", "0.5", "--decision-log",
             str(tmp_path / "missing.jsonl"), "--resume"],
            capture_output=True, env=env, text=True, timeout=60,
        )
        assert proc.returncode == 2
        assert "error:" in proc.stderr
