"""The incremental controller's bit-identity and snapshot contracts.

The headline guarantee of :mod:`repro.engine.controller`: replaying any
request log through an :class:`AdmissionController` session produces
*byte-identical* schedules, stats counters and journal rows to feeding
the same jobs through the batch :func:`repro.engine.simulator.simulate`
path, because both drive the same kernel strategy.  Snapshots are
construction recipes plus the request log; restore replays and verifies.
"""

import json

import pytest

from repro.baselines.registry import ALGORITHMS, make_algorithm
from repro.engine import AdmissionController, SnapshotMismatchError, open_session
from repro.engine.controller import (
    decision_to_payload,
    job_from_payload,
    job_to_payload,
)
from repro.engine.kernel import SimulationError
from repro.engine.simulator import simulate
from repro.model.job import Job
from repro.workloads.arrivals import mmpp_instance
from repro.workloads.random_instances import random_instance

IMMEDIATE = sorted(
    name for name, spec in ALGORITHMS.items() if spec.model == "nonpreemptive"
)


def _machines_for(name: str) -> int:
    return 1 if ALGORITHMS[name].single_machine_only else 3


class TestBitIdentityWithSimulate:
    """session.offer(...) over a request log == simulate(...) on it."""

    @pytest.mark.parametrize("algorithm", IMMEDIATE)
    def test_schedule_json_is_byte_identical(self, algorithm):
        m = _machines_for(algorithm)
        inst = mmpp_instance(80, machines=m, epsilon=0.5, seed=13)
        kwargs = {"rng": 5} if ALGORITHMS[algorithm].randomized else {}
        session = open_session(
            algorithm, machines=m, epsilon=0.5, name=inst.name, **kwargs
        )
        for job in inst.jobs:
            session.offer(job)
        live = session.close()
        batch = simulate(make_algorithm(algorithm, **kwargs), inst)
        assert live.to_json() == batch.to_json()
        assert live.accepted_load == batch.accepted_load

    def test_decision_trace_matches_batch_trace(self):
        inst = random_instance(50, 2, 0.3, seed=4)
        session = open_session("threshold", machines=2, epsilon=0.3)
        live = [decision_to_payload(session.offer(job)) for job in inst.jobs]
        batch = simulate(make_algorithm("threshold"), inst)
        offline = [
            decision_to_payload(r.decision) for r in batch.meta["trace"]
        ]
        assert live == offline

    def test_stats_counters_match_batch(self):
        inst = random_instance(40, 2, 0.3, seed=9)
        session = open_session("threshold", machines=2, epsilon=0.3)
        session.offer_many(inst.jobs)
        live = session.schedule().meta["stats"]
        batch = simulate(make_algorithm("threshold"), inst).meta["stats"]
        for field in ("jobs", "decisions", "accepted", "rejected", "steps",
                      "accepted_load", "model", "algorithm"):
            assert getattr(live, field) == getattr(batch, field), field

    def test_incremental_state_is_live(self):
        session = open_session("greedy", machines=2, epsilon=1.0)
        d1 = session.offer(Job(0.0, 1.0, 3.0))
        assert d1.accepted and session.accepted_load == 1.0
        assert session.now == 0.0
        d2 = session.offer(Job(1.0, 1.0, 4.0))
        assert d2.accepted
        assert session.now == 1.0
        assert len(session.jobs) == 2
        assert sum(session.loads()) > 0.0


class TestSessionContract:
    def test_offer_time_must_match_release(self):
        session = open_session("threshold", machines=1, epsilon=0.5)
        with pytest.raises(SimulationError, match="disagrees with job release"):
            session.offer(Job(2.0, 1.0, 4.0), t=1.0)
        # matching t is fine
        session.offer(Job(2.0, 1.0, 4.0), t=2.0)

    def test_monotone_releases_enforced(self):
        session = open_session("threshold", machines=1, epsilon=0.5)
        session.offer(Job(5.0, 1.0, 7.0))
        with pytest.raises(SimulationError):
            session.offer(Job(1.0, 1.0, 3.0))

    def test_closed_session_rejects_offers(self):
        session = open_session("threshold", machines=1, epsilon=0.5)
        session.offer(Job(0.0, 1.0, 2.0))
        session.close()
        with pytest.raises(SimulationError, match="closed"):
            session.offer(Job(1.0, 1.0, 3.0))

    def test_unknown_algorithm_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            open_session("nope", machines=1, epsilon=0.5)

    def test_non_immediate_model_rejected(self):
        delayed = next(
            n for n, s in ALGORITHMS.items() if s.model != "nonpreemptive"
        )
        with pytest.raises(ValueError, match="cannot answer a live offer"):
            open_session(delayed, machines=1, epsilon=0.5)

    def test_single_machine_constraint_enforced(self):
        single = next(
            n for n, s in ALGORITHMS.items()
            if s.model == "nonpreemptive" and s.single_machine_only
        )
        with pytest.raises(ValueError, match="single-machine"):
            open_session(single, machines=2, epsilon=0.5)

    def test_policy_object_passthrough_forfeits_snapshot(self):
        session = open_session(
            make_algorithm("threshold"), machines=2, epsilon=0.5
        )
        session.offer(Job(0.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="registry algorithm name"):
            session.snapshot()

    def test_policy_object_rejects_kwargs(self):
        with pytest.raises(ValueError, match="registry algorithm names"):
            open_session(
                make_algorithm("threshold"), machines=2, epsilon=0.5, seed=1
            )


class TestSnapshotRestore:
    def test_round_trip_is_json_safe_and_verified(self):
        inst = random_instance(30, 2, 0.4, seed=3)
        session = open_session("threshold", machines=2, epsilon=0.4,
                               name=inst.name)
        session.offer_many(inst.jobs)
        snap = json.loads(json.dumps(session.snapshot()))
        restored = AdmissionController.restore(snap)
        assert restored.machines == session.machines
        assert restored.epsilon == session.epsilon
        assert [decision_to_payload(d) for d in restored.decisions] == [
            decision_to_payload(d) for d in session.decisions
        ]
        # the restored session keeps serving identically
        probe = Job(session.now + 1.0, 1.0, session.now + 2.4)
        assert (
            decision_to_payload(restored.offer(probe))
            == decision_to_payload(session.offer(probe))
        )

    def test_seeded_randomized_policy_replays_exactly(self):
        inst = random_instance(40, 1, 0.4, seed=8)
        session = open_session("random-admission", machines=1, epsilon=0.4,
                               rng=21)
        session.offer_many(inst.jobs)
        restored = AdmissionController.restore(session.snapshot())
        assert [decision_to_payload(d) for d in restored.decisions] == [
            decision_to_payload(d) for d in session.decisions
        ]

    def test_tampered_snapshot_raises_mismatch(self):
        inst = random_instance(20, 2, 0.4, seed=6)
        session = open_session("threshold", machines=2, epsilon=0.4)
        session.offer_many(inst.jobs)
        snap = session.snapshot()
        flipped = [not snap["decisions"][0][0], None, None]
        snap["decisions"][0] = flipped
        with pytest.raises(SnapshotMismatchError, match="replay diverged"):
            AdmissionController.restore(snap)
        # ... but verify=False restores on trust
        AdmissionController.restore(snap, verify=False)

    def test_version_gate(self):
        session = open_session("threshold", machines=1, epsilon=0.5)
        snap = session.snapshot()
        snap["version"] = 99
        with pytest.raises(ValueError, match="snapshot version"):
            AdmissionController.restore(snap)


class TestPayloadHelpers:
    def test_job_payload_round_trip_is_exact(self):
        job = Job(0.1 + 0.2, 1.0 / 3.0, 2.0 / 3.0 + 0.30000000000000004,
                  weight=0.7)
        again = job_from_payload(json.loads(json.dumps(job_to_payload(job))))
        assert (again.release, again.processing, again.deadline, again.weight) \
            == (job.release, job.processing, job.deadline, job.weight)

    def test_weightless_payload_has_three_fields(self):
        assert job_from_payload([0.0, 1.0, 2.0]).weight is None
        with pytest.raises(ValueError, match="3 or 4 fields"):
            job_from_payload([0.0, 1.0])
