"""Elastic pull-based execution: leases, heartbeats, speculation, recovery.

The acceptance bar (ISSUE 7): an elastic chaos run with one 10x-slow
worker and one worker that dies mid-sweep completes *without
quarantining a single cell* and merges bit-identical to a serial scalar
run.  On top of that, :class:`~repro.workloads.elastic.CellQueue` is a
pure state machine, so its lease semantics are unit-tested directly —
no processes, no clocks.
"""

import json
import time
from functools import lru_cache, partial

import pytest

from repro.testing.chaos import WorkerChaosPlan
from repro.workloads.elastic import (
    DEFAULT_HEARTBEAT_INTERVAL,
    LEASE_TIMEOUT_BEATS,
    CellQueue,
    SpeculationMismatch,
)
from repro.workloads.execute import ExecutionPolicy, execute_sweep
from repro.workloads.journal import load_journal
from repro.workloads.random_instances import random_instance
from repro.workloads.resilient import SweepInterrupted, run_cell
from repro.workloads.sweep import SweepSpec


def _spec(base_seed: int = 17, **overrides) -> SweepSpec:
    defaults = dict(
        epsilons=[0.2, 0.4],
        machine_counts=[1, 2],
        algorithms=["threshold", "greedy"],
        workload=partial(random_instance, 8),
        repetitions=3,
        base_seed=base_seed,
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


def _rows_key(rows):
    return [r.as_dict() for r in rows]


@lru_cache(maxsize=None)
def _serial_rows(base_seed: int) -> tuple:
    return tuple(execute_sweep(_spec(base_seed)).rows)


def _elastic(spec, **kwargs) -> "ExecutionPolicy":
    defaults = dict(
        elastic=True,
        parallel=True,
        workers=3,
        retries=2,
        backoff=0.01,
        heartbeat_interval=0.05,
    )
    defaults.update(kwargs)
    return execute_sweep(spec, ExecutionPolicy(**defaults))


def _queue_cells(spec):
    return [
        (eps, m, rep, spec.cell_seed(eps, m, rep)) for eps, m, rep in spec.cells()
    ]


class TestCellQueueUnit:
    """Lease state machine, no processes: grant/beat/expire/release/steal."""

    def test_grant_pops_pending_and_enforces_one_lease_per_worker(self):
        queue = CellQueue(_queue_cells(_spec()), lease_timeout=1.0)
        lease = queue.next_lease(0, now=0.0)
        assert lease.worker == 0 and lease.attempt == 1 and not lease.speculative
        assert queue.granted == 1
        with pytest.raises(RuntimeError, match="already holds a lease"):
            queue.next_lease(0, now=0.1)

    def test_heartbeat_extends_soft_deadline_not_hard(self):
        queue = CellQueue(_queue_cells(_spec()), lease_timeout=1.0, timeout=5.0)
        lease = queue.next_lease(0, now=0.0)
        assert lease.deadline == 1.0 and lease.hard_deadline == 5.0
        assert queue.heartbeat(0, now=0.9)
        assert lease.deadline == pytest.approx(1.9)
        assert lease.hard_deadline == 5.0  # immovable: slow != unbounded
        assert lease.heartbeats == 1
        assert not queue.heartbeat(7, now=0.9)  # no lease held

    def test_expired_vs_overdue_partition(self):
        queue = CellQueue(_queue_cells(_spec()), lease_timeout=1.0, timeout=3.0)
        queue.next_lease(0, now=0.0)
        queue.next_lease(1, now=0.0)
        queue.heartbeat(1, now=2.5)  # kept alive past its soft deadline
        assert {l.worker for l in queue.expired(2.0)} == {0}
        assert {l.worker for l in queue.overdue(2.0)} == set()
        assert {l.worker for l in queue.overdue(3.5)} == {0, 1}

    def test_expiry_release_requeues_without_charging_the_cell(self):
        queue = CellQueue(_queue_cells(_spec()), retries=0, lease_timeout=1.0)
        lease = queue.next_lease(0, now=0.0)
        queue.release(0, "expired: missed heartbeats", charge_cell=False)
        # Even with a zero retry budget the cell survives a worker fault.
        assert not queue.failures
        requeued = queue.pending[-1]
        assert requeued.seed == lease.seed and requeued.attempt == 1
        assert "expired: missed heartbeats" in requeued.history

    def test_cell_fault_spends_retry_budget_then_quarantines(self):
        queue = CellQueue(_queue_cells(_spec()), retries=1, lease_timeout=1.0)
        seed = queue.pending[0].seed
        for expected_attempt in (1, 2):
            lease = queue.next_lease(0, now=0.0)
            # The queue serves FIFO, so the re-queued cell comes back last;
            # drain to it deterministically by releasing others uncharged.
            while lease.seed != seed:
                queue.release(0, "expired: detour", charge_cell=False)
                lease = queue.next_lease(0, now=0.0)
            assert lease.attempt == expected_attempt
            queue.release(0, "error: injected", charge_cell=True)
        assert [f.seed for f in queue.failures] == [seed]
        assert queue.failures[0].kind == "error"
        assert queue.failures[0].attempts == 2
        assert seed not in queue.remaining

    def test_speculation_duplicates_longest_outstanding_cell(self):
        cells = _queue_cells(_spec())[:2]
        queue = CellQueue(cells, lease_timeout=1.0, speculate=True, max_copies=2)
        first = queue.next_lease(0, now=0.0)
        second = queue.next_lease(1, now=1.0)
        spec_lease = queue.next_lease(2, now=2.0)  # pending empty -> steal
        assert spec_lease.speculative
        assert spec_lease.seed == first.seed  # oldest grant wins the copy
        assert queue.speculated == 1
        # max_copies caps further duplication of the same cell ...
        third = queue.next_lease(3, now=3.0)
        assert third is not None and third.seed == second.seed
        # ... and once every remaining cell is saturated there is nothing.
        assert queue.next_lease(4, now=4.0) is None

    def test_speculation_disabled_grants_nothing_in_endgame(self):
        queue = CellQueue(_queue_cells(_spec())[:1], lease_timeout=1.0, speculate=False)
        queue.next_lease(0, now=0.0)
        assert queue.next_lease(1, now=1.0) is None

    def test_losing_copy_completion_is_stale_and_checked(self):
        spec = _spec()
        cells = _queue_cells(spec)[:1]
        queue = CellQueue(cells, lease_timeout=1.0)
        eps, m, rep, seed = cells[0]
        rows = run_cell(spec, eps, m, rep, {})
        queue.next_lease(0, now=0.0)
        queue.next_lease(1, now=0.5)  # speculative copy
        assert queue.complete(0, seed, rows)[0] == "win"
        assert queue.done
        outcome, lease = queue.complete(1, seed, list(rows))
        assert outcome == "duplicate" and lease.speculative
        # A diverging late copy is a loud nondeterminism failure.
        queue.leases[2] = type(lease)(**{**lease.__dict__, "worker": 2})
        with pytest.raises(SpeculationMismatch):
            queue.complete(2, seed, [])


class TestElasticExecution:
    def test_clean_run_bit_identical_to_serial(self, tmp_path):
        spec = _spec()
        path = tmp_path / "elastic.jsonl"
        result = _elastic(spec, journal=str(path))
        assert _rows_key(result.rows) == _rows_key(_serial_rows(17))
        assert result.manifest.cells_completed == result.manifest.cells_total
        assert not result.manifest.failures
        assert not result.manifest.worker_failures

    def test_journal_provenance_and_elastic_stats_trailer(self, tmp_path):
        spec = _spec()
        path = tmp_path / "elastic.jsonl"
        _elastic(spec, journal=str(path), workers=2)
        state = load_journal(path)
        assert set(state.provenance) == set(state.completed)
        for prov in state.provenance.values():
            assert prov["worker"] in (0, 1)
            assert prov["attempt"] >= 1
            assert prov["heartbeats"] >= 0
            assert prov["lease_ms"] >= 0.0
            assert prov["speculative"] in (True, False)
        stats = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if json.loads(line).get("kind") == "stats"
        ][-1]
        assert stats["scheduler"] == "elastic"
        assert stats["workers"] == 2
        assert len(stats["worker_wall_seconds"]) == 2
        assert sum(stats["worker_cells"]) == len(state.completed)
        assert stats["leases"] >= len(state.completed)
        assert stats["heartbeats"] >= 0
        assert stats["speculated"] >= 0

    def test_acceptance_slow_plus_dead_worker_no_cell_quarantined(self, tmp_path):
        """ISSUE 7 acceptance: 10x slow + mid-sweep death, zero cell loss."""
        spec = _spec()
        path = tmp_path / "chaos.jsonl"
        plan = WorkerChaosPlan(
            slow_worker=((0, 0.5),),  # ~10x a normal cell
            dead_worker=((1, 3),),  # dies picking up its 3rd cell, every gen
        )
        result = _elastic(
            spec,
            journal=str(path),
            workers=3,
            worker_chaos=plan,
            worker_max_failures=2,
        )
        assert _rows_key(result.rows) == _rows_key(_serial_rows(17))
        assert not result.manifest.failures  # no *cell* quarantined
        assert result.manifest.quarantined == 0
        assert result.manifest.cells_completed == result.manifest.cells_total
        state = load_journal(path)
        assert set(state.completed) == {spec.cell_seed(*c) for c in spec.cells()}

    def test_lost_heartbeats_expire_lease_and_quarantine_worker(self):
        """A hung-alike slot is drained of its lease, then quarantined.

        Slot 0 never heartbeats and sleeps past the lease deadline, so
        every one of its leases expires.  Slot 1 is slow-but-heartbeating,
        which keeps it busy long enough that the respawned slot 0 is
        granted (and loses) a second lease — over its budget of 1 — while
        speculation is off so expiry is the only recovery channel.
        """
        spec = _spec(repetitions=1)
        plan = WorkerChaosPlan(
            lost_heartbeat=(0,),
            slow_worker=((0, 0.6), (1, 0.3)),
        )
        result = _elastic(
            spec,
            workers=2,
            worker_chaos=plan,
            heartbeat_interval=0.02,
            lease_timeout=0.1,
            worker_max_failures=1,
            speculate=False,
        )
        assert _rows_key(result.rows) == _rows_key(execute_sweep(spec).rows)
        assert not result.manifest.failures
        quarantined = result.manifest.worker_failures
        assert [w.slot for w in quarantined] == [0]
        assert quarantined[0].failures == 2  # budget of 1, then one more
        assert "expired" in quarantined[0].detail
        assert result.manifest.workers_quarantined == 1
        assert "worker(s) quarantined" in result.manifest.summary()

    def test_duplicate_result_fault_accepted_once(self):
        spec = _spec(repetitions=2)
        plan = WorkerChaosPlan(duplicate_result=(0, 1))
        result = _elastic(spec, workers=2, worker_chaos=plan)
        assert _rows_key(result.rows) == _rows_key(execute_sweep(spec).rows)
        assert result.manifest.cells_completed == result.manifest.cells_total

    def test_speculation_rescues_straggler_wall_clock(self):
        """One 10x-slow worker must not stretch the sweep ~10x."""
        spec = _spec(repetitions=2)
        plan = WorkerChaosPlan(slow_worker=((0, 0.6),))
        start = time.monotonic()
        result = _elastic(spec, workers=3, worker_chaos=plan, speculate=True)
        wall = time.monotonic() - start
        assert _rows_key(result.rows) == _rows_key(execute_sweep(spec).rows)
        # 8 cells / 3 workers with one worker sleeping 0.6s per cell: a
        # static assignment would serialise >= 1.2s of injected sleep into
        # the makespan; speculation re-runs the slow slot's cells elsewhere.
        assert wall < 1.2, f"speculation failed to contain the straggler: {wall:.2f}s"
        assert result.manifest.speculated >= 1
        assert "speculated" in result.manifest.summary()

    def test_interrupt_and_resume_bit_identical(self, tmp_path):
        spec = _spec()
        path = tmp_path / "resume.jsonl"
        with pytest.raises(SweepInterrupted) as excinfo:
            _elastic(spec, journal=str(path), interrupt_after=3, workers=2)
        partial = excinfo.value.result
        assert partial.manifest.cells_completed >= 3
        state = load_journal(path)
        assert len(state.completed) == partial.manifest.cells_completed
        resumed = _elastic(spec, journal=str(path), resume=True, workers=2)
        assert _rows_key(resumed.rows) == _rows_key(_serial_rows(17))
        assert resumed.manifest.cells_replayed == partial.manifest.cells_completed

    def test_hard_timeout_charges_the_cell(self):
        """A cell over its hard budget quarantines like the static path."""

        spec = _spec(
            repetitions=1,
            epsilons=[0.2],
            machine_counts=[1],
            algorithms=["greedy"],
            workload=_sleepy_workload,
        )
        result = _elastic(
            spec,
            workers=1,
            timeout=0.3,
            retries=0,
            heartbeat_interval=0.02,
        )
        assert result.manifest.quarantined == 1
        assert result.manifest.failures[0].kind == "timeout"
        assert not result.manifest.worker_failures  # slot survives, cell pays


def _sleepy_workload(m: int, eps: float, seed: int):
    time.sleep(5.0)
    return random_instance(6, m, eps, seed=seed)


class TestAdaptiveReps:
    def test_loose_tolerance_skips_trailing_reps(self):
        spec = _spec(repetitions=6)
        result = _elastic(
            spec,
            workers=2,
            adaptive_reps=True,
            adaptive_min_reps=2,
            adaptive_rel_tol=10.0,  # any CI counts as tight
        )
        assert result.manifest.cells_skipped > 0
        assert (
            result.manifest.cells_completed + result.manifest.cells_skipped
            == result.manifest.cells_total
        )
        assert "skipped by adaptive repetitions" in result.manifest.summary()
        # Executed reps are a bit-identical *prefix* of the exhaustive run:
        # reps are skipped only from the tail of each config.
        serial = {
            (r.epsilon, r.machines, r.repetition, r.algorithm): r.as_dict()
            for r in execute_sweep(spec).rows
        }
        for row in result.rows:
            key = (row.epsilon, row.machines, row.repetition, row.algorithm)
            assert row.as_dict() == serial[key]
        done_reps = {}
        for row in result.rows:
            done_reps.setdefault((row.epsilon, row.machines), set()).add(row.repetition)
        for reps in done_reps.values():
            assert reps == set(range(len(reps)))  # contiguous prefix from 0

    def test_tight_tolerance_runs_everything(self):
        spec = _spec(repetitions=3)
        result = _elastic(
            spec,
            workers=2,
            adaptive_reps=True,
            adaptive_rel_tol=1e-12,  # never tight for noisy loads
        )
        assert result.manifest.cells_skipped == 0
        assert result.manifest.cells_completed == result.manifest.cells_total
        assert _rows_key(result.rows) == _rows_key(_serial_rows(17))


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(elastic=True, heartbeat_interval=0.0),
            dict(elastic=True, heartbeat_interval=0.5, lease_timeout=0.5),
            dict(elastic=True, worker_max_failures=0),
            dict(elastic=True, adaptive_reps=True, adaptive_min_reps=1),
            dict(elastic=True, adaptive_reps=True, adaptive_rel_tol=0.0),
            dict(adaptive_reps=True),  # requires elastic
            dict(worker_chaos=WorkerChaosPlan()),  # requires elastic
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionPolicy(**kwargs)

    def test_worker_chaos_plan_validates_fields(self):
        with pytest.raises(ValueError, match="delay"):
            WorkerChaosPlan(slow_worker=((0, -1.0),))
        with pytest.raises(ValueError, match="1-based"):
            WorkerChaosPlan(dead_worker=((0, 0),))
