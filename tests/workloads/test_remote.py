"""Remote elastic execution: wire codec, host registry, network chaos.

The acceptance bar (ISSUE 10): a 3-host remote sweep where one host is
killed and one is partitioned-then-healed completes with zero cells
lost, the dead host quarantined as one failure domain, and rows
bit-identical to the serial scalar run.  The wire layer
(:func:`~repro.workloads.remote.encode_message` /
:class:`~repro.workloads.remote.HostLink`) is pure, so delivery
guarantees — CRC, sequence dedup, partition hold/heal — are unit- and
property-tested without processes.
"""

import json
import math
from functools import lru_cache, partial

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.testing.chaos import HostChaosPlan
from repro.workloads.elastic import CellQueue
from repro.workloads.execute import ExecutionPolicy, execute_sweep
from repro.workloads.journal import load_journal
from repro.workloads.random_instances import random_instance
from repro.workloads.remote import (
    DEFAULT_WORKER_COMMAND,
    HostLink,
    HostSpec,
    LOCAL_FALLBACK_HOST,
    RemoteProtocolError,
    code_fingerprint,
    decode_message,
    encode_message,
    env_fingerprint,
    fingerprint_mismatch,
    load_hosts,
    message_crc,
    resolve_hosts,
)
from repro.workloads.resilient import run_cell
from repro.workloads.sweep import SweepSpec


def _spec(base_seed: int = 23, **overrides) -> SweepSpec:
    defaults = dict(
        epsilons=[0.2, 0.4],
        machine_counts=[1, 2],
        algorithms=["threshold", "greedy"],
        workload=partial(random_instance, 8),
        repetitions=2,
        base_seed=base_seed,
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


def _rows_key(rows):
    return [r.as_dict() for r in rows]


@lru_cache(maxsize=None)
def _serial_rows(base_seed: int, repetitions: int = 2) -> tuple:
    return tuple(
        execute_sweep(_spec(base_seed, repetitions=repetitions)).rows
    )


def _remote(spec, hosts, **kwargs):
    defaults = dict(
        hosts=hosts,
        retries=2,
        heartbeat_interval=0.05,
        handshake_timeout=15.0,
    )
    defaults.update(kwargs)
    return execute_sweep(spec, ExecutionPolicy(**defaults))


# ---------------------------------------------------------------------------
# wire codec
# ---------------------------------------------------------------------------


class TestWireCodec:
    def test_round_trip_every_op(self):
        message = decode_message(encode_message("lease", 3, seed=42, eps=0.2))
        assert message["op"] == "lease"
        assert message["seq"] == 3 and message["seed"] == 42
        assert message["crc"] == message_crc(message)

    def test_crc_is_stable_under_key_reordering(self):
        a = {"op": "result", "seq": 1, "rows": [[1, 2]]}
        b = {"rows": [[1, 2]], "seq": 1, "op": "result"}
        assert message_crc(a) == message_crc(b)

    def test_corrupted_payload_fails_loudly(self):
        raw = encode_message("result", 5, seed=7, rows=[[1.0, 2.0]])
        tampered = raw.replace(b"2.0", b"3.0")
        with pytest.raises(RemoteProtocolError, match="CRC mismatch"):
            decode_message(tampered)

    @pytest.mark.parametrize(
        "raw, match",
        [
            (b"not json\n", "not valid JSON"),
            (b"[1, 2]\n", "JSON object"),
            (b'{"op": "warp", "seq": 1}\n', "unknown op"),
            (b'{"op": "ready"}\n', "integer seq"),
            (b"\xff\xfe\n", "not UTF-8"),
        ],
    )
    def test_garbage_is_rejected(self, raw, match):
        with pytest.raises(RemoteProtocolError, match=match):
            decode_message(raw)

    def test_unknown_op_cannot_be_encoded(self):
        with pytest.raises(RemoteProtocolError, match="unknown op"):
            encode_message("warp", 1)

    def test_non_finite_rows_survive_the_wire(self):
        """Injected 'corrupt' chaos rows carry NaN — the controller must
        receive (and then reject) them, not crash the framing."""
        raw = encode_message("result", 2, seed=9, rows=[[float("nan")]])
        message = decode_message(raw)
        assert math.isnan(message["rows"][0][0])


# ---------------------------------------------------------------------------
# environment fingerprint
# ---------------------------------------------------------------------------


class TestFingerprint:
    def test_env_fingerprint_shape(self):
        fp = env_fingerprint()
        assert fp["code"] == code_fingerprint()
        assert len(fp["code"]) == 16
        assert fp["protocol"] == 1

    def test_identical_fingerprints_are_compatible(self):
        assert fingerprint_mismatch(env_fingerprint(), env_fingerprint()) is None

    def test_first_differing_field_is_named(self):
        ours = env_fingerprint()
        theirs = dict(ours, code="deadbeefdeadbeef")
        assert "code:" in fingerprint_mismatch(ours, theirs)
        theirs = dict(ours, protocol=99)
        assert "protocol:" in fingerprint_mismatch(ours, theirs)
        assert "99" in fingerprint_mismatch(ours, theirs)


# ---------------------------------------------------------------------------
# host registry
# ---------------------------------------------------------------------------


class TestHostRegistry:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            HostSpec(name="")
        with pytest.raises(ValueError, match="slots"):
            HostSpec(name="a", slots=0)
        with pytest.raises(ValueError, match="command"):
            HostSpec(name="a", command="   ")

    def test_argv_expands_the_python_template(self):
        import sys

        argv = HostSpec(name="a").argv()
        assert argv[0] == sys.executable
        assert argv[1:] == ["-m", "repro.workloads.remote_worker"]
        ssh = HostSpec(name="b", command="ssh b {python} -m repro.workloads.remote_worker")
        assert ssh.argv()[:2] == ["ssh", "b"]

    def test_load_hosts_bare_list_and_wrapped(self, tmp_path):
        entries = [
            {"name": "a", "slots": 2},
            {"name": "b", "fingerprint": "deadbeefdeadbeef"},
        ]
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(entries))
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(json.dumps({"hosts": entries}))
        for path in (bare, wrapped):
            specs = load_hosts(path)
            assert [s.name for s in specs] == ["a", "b"]
            assert specs[0].slots == 2
            assert specs[0].command == DEFAULT_WORKER_COMMAND
            assert specs[1].fingerprint == "deadbeefdeadbeef"

    @pytest.mark.parametrize(
        "data, match",
        [
            ([], "non-empty list"),
            ({"hosts": []}, "non-empty list"),
            ({"machines": [{"name": "a"}]}, "non-empty list"),
            ([{"name": "a", "slot": 2}], "unknown host keys"),
            ([{"slots": 2}], "needs a name"),
            (["a"], "must be objects"),
            ([{"name": "a"}, {"name": "a"}], "duplicate host names"),
        ],
    )
    def test_bad_registry_rejected(self, tmp_path, data, match):
        path = tmp_path / "hosts.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match=match):
            load_hosts(path)

    def test_resolve_hosts_passthrough_and_empty(self):
        specs = (HostSpec(name="a"),)
        assert resolve_hosts(specs) == specs
        assert resolve_hosts(list(specs)) == specs
        with pytest.raises(ValueError, match="at least one host"):
            resolve_hosts(())


# ---------------------------------------------------------------------------
# HostLink: delivery guarantees as a pure state machine
# ---------------------------------------------------------------------------


def _beat(seq: int) -> bytes:
    return encode_message("heartbeat", seq, seed=1)


class TestHostLink:
    def test_clean_delivery_in_order(self):
        link = HostLink("a")
        out = [link.receive(_beat(i), now=0.0) for i in range(3)]
        assert [m[0]["seq"] for m in out] == [0, 1, 2]

    def test_duplicate_seq_is_deduped_not_double_delivered(self):
        link = HostLink("a")
        assert len(link.receive(_beat(7), now=0.0)) == 1
        assert link.receive(_beat(7), now=0.1) == []
        assert link.duplicates_dropped == 1

    def test_injected_duplicate_fault_delivers_once(self):
        link = HostLink("a", HostChaosPlan(duplicate=(("a", 0),)))
        assert len(link.receive(_beat(0), now=0.0)) == 1
        assert link.duplicates_dropped == 1

    def test_injected_drop_fault_loses_the_message(self):
        link = HostLink("a", HostChaosPlan(drop=(("a", 1),)))
        assert len(link.receive(_beat(0), now=0.0)) == 1
        assert link.receive(_beat(1), now=0.1) == []
        assert link.dropped == 1
        assert len(link.receive(_beat(2), now=0.2)) == 1

    def test_chaos_is_keyed_by_host_name(self):
        link = HostLink("b", HostChaosPlan(drop=(("a", 0),)))
        assert len(link.receive(_beat(0), now=0.0)) == 1

    def test_exempt_link_ignores_chaos(self):
        link = HostLink("a", HostChaosPlan(drop=(("a", 0),)), exempt=True)
        assert len(link.receive(_beat(0), now=0.0)) == 1

    def test_partition_holds_then_heals_with_backlog_in_order(self):
        link = HostLink("a", HostChaosPlan(partition=(("a", 1, 5.0),)))
        assert len(link.receive(_beat(0), now=0.0)) == 1  # pre-partition
        assert link.receive(_beat(1), now=1.0) == []
        assert link.partitioned
        assert link.receive(_beat(2), now=2.0) == []
        assert link.flush(now=5.9) == []  # heal clock starts at first hold
        healed = link.flush(now=6.0)
        assert [m["seq"] for m in healed] == [1, 2]
        assert link.healed and not link.partitioned
        # Post-heal traffic flows clean.
        assert len(link.receive(_beat(3), now=6.1)) == 1

    def test_heal_via_receive_flushes_in_one_call(self):
        link = HostLink("a", HostChaosPlan(partition=(("a", 0, 1.0),)))
        assert link.receive(_beat(0), now=0.0) == []
        # The next inbound line past the heal horizon delivers the backlog.
        out = link.receive(_beat(1), now=2.0)
        assert [m["seq"] for m in out] == [0, 1]

    def test_healed_backlog_is_seq_deduped(self):
        link = HostLink(
            "a",
            HostChaosPlan(partition=(("a", 0, 1.0),), duplicate=(("a", 0),)),
        )
        assert link.receive(_beat(0), now=0.0) == []
        out = link.flush(now=1.5)
        assert [m["seq"] for m in out] == [0]
        assert link.duplicates_dropped == 1


# ---------------------------------------------------------------------------
# policy / chaos-plan validation
# ---------------------------------------------------------------------------


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(host_chaos=HostChaosPlan()),  # requires hosts
            dict(worker_chaos=object()),  # slot-level, local elastic only
            dict(hosts=(HostSpec(name="a"),), host_max_failures=0),
            dict(hosts=(HostSpec(name="a"),), handshake_timeout=0.0),
            dict(hosts=(HostSpec(name="a"),), adaptive_reps=True, elastic=True),
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionPolicy(**kwargs)

    def test_hosts_policy_needs_processes(self):
        assert ExecutionPolicy(hosts=(HostSpec(name="a"),)).needs_processes

    def test_host_chaos_plan_validates_fields(self):
        with pytest.raises(ValueError, match="first_idx"):
            HostChaosPlan(partition=(("a", -1, 1.0),))
        with pytest.raises(ValueError, match="heal_seconds"):
            HostChaosPlan(partition=(("a", 0, -1.0),))
        with pytest.raises(ValueError, match="message index"):
            HostChaosPlan(drop=(("a", -1),))
        with pytest.raises(ValueError, match="1-based"):
            HostChaosPlan(dead_host=(("a", 0),))
        with pytest.raises(ValueError, match="delay"):
            HostChaosPlan(slow_host=(("a", -0.1),))


# ---------------------------------------------------------------------------
# integration: real worker subprocesses over the wire
# ---------------------------------------------------------------------------


def _hosts(*specs):
    return tuple(specs)


class TestRemoteExecution:
    def test_clean_two_host_run_bit_identical(self, tmp_path):
        spec = _spec()
        path = tmp_path / "remote.jsonl"
        result = _remote(
            spec,
            _hosts(HostSpec(name="alpha", slots=2), HostSpec(name="beta")),
            journal=str(path),
        )
        assert _rows_key(result.rows) == _rows_key(_serial_rows(23))
        assert result.manifest.cells_completed == result.manifest.cells_total
        assert not result.manifest.failures
        assert not result.manifest.host_failures
        assert not result.manifest.degraded_to_local

        state = load_journal(path)
        assert set(state.provenance) == set(state.completed)
        hosts_seen = set()
        for prov in state.provenance.values():
            assert prov["transport"] == "remote"
            assert prov["host"] in {"alpha", "beta"}
            assert prov["attempt"] >= 1
            hosts_seen.add(prov["host"])
        assert hosts_seen  # at least one host did work
        stats = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if json.loads(line).get("kind") == "stats"
        ][-1]
        assert stats["scheduler"] == "elastic-remote"
        by_name = {h["name"]: h for h in stats["hosts"]}
        assert set(by_name) == {"alpha", "beta"}
        assert sum(h["cells"] for h in stats["hosts"]) == len(state.completed)
        assert not any(h["quarantined"] for h in stats["hosts"])

    def test_fingerprint_mismatch_quarantines_host_not_sweep(self):
        """A host pinned to the wrong code hash is refused at handshake;
        the remaining verified host completes the sweep alone."""
        spec = _spec(repetitions=1)
        result = _remote(
            spec,
            _hosts(
                HostSpec(name="good"),
                HostSpec(name="divergent", fingerprint="0" * 16),
            ),
        )
        assert _rows_key(result.rows) == _rows_key(
            execute_sweep(spec).rows
        )
        assert not result.manifest.failures
        assert result.manifest.hosts_quarantined == 1
        [hf] = result.manifest.host_failures
        assert hf.host == "divergent"
        assert "fingerprint mismatch" in hf.detail and "code:" in hf.detail
        assert not result.manifest.degraded_to_local
        assert "host(s) quarantined" in result.manifest.summary()

    def test_all_hosts_refused_degrades_to_local_fallback(self):
        spec = _spec(repetitions=1)
        result = _remote(
            spec,
            _hosts(HostSpec(name="wrong", fingerprint="f" * 16)),
        )
        assert _rows_key(result.rows) == _rows_key(execute_sweep(spec).rows)
        assert result.manifest.degraded_to_local
        assert result.manifest.hosts_quarantined == 1
        assert not result.manifest.failures
        assert "degraded to local pool" in result.manifest.summary()

    def test_no_fallback_quarantines_remaining_cells_as_host_domain(self):
        spec = _spec(repetitions=1)
        result = _remote(
            spec,
            _hosts(HostSpec(name="wrong", fingerprint="f" * 16)),
            local_fallback=False,
        )
        assert result.manifest.cells_completed == 0
        assert not result.manifest.degraded_to_local
        assert len(result.manifest.failures) == result.manifest.cells_total
        assert all(f.kind == "host" for f in result.manifest.failures)
        assert all(
            "every host quarantined" in f.detail
            for f in result.manifest.failures
        )

    def test_acceptance_dead_host_plus_partition_heal(self, tmp_path):
        """ISSUE 10 acceptance: one host killed, one partitioned-then-
        healed, a slow-but-healthy survivor — zero cells lost, the dead
        host quarantined as one failure domain, rows bit-identical."""
        spec = _spec(repetitions=4)
        path = tmp_path / "chaos.jsonl"
        plan = HostChaosPlan(
            dead_host=(("b", 1),),  # dies on every lease it is granted
            partition=(("c", 4, 1.0),),  # goes quiet, heals 1s later
            # Slowing both survivors keeps the sweep long enough that
            # b's respawn-die-respawn cycle (two worker launches, ~0.5s
            # of interpreter startup each) reliably crosses its budget.
            slow_host=(("a", 0.35), ("c", 0.35)),
        )
        result = _remote(
            spec,
            _hosts(HostSpec(name="a"), HostSpec(name="b"), HostSpec(name="c")),
            journal=str(path),
            host_chaos=plan,
            host_max_failures=1,
            lease_timeout=0.4,
        )
        assert _rows_key(result.rows) == _rows_key(_serial_rows(23, 4))
        assert result.manifest.cells_completed == result.manifest.cells_total
        assert not result.manifest.failures  # zero cells lost
        assert not result.manifest.degraded_to_local
        quarantined = {hf.host for hf in result.manifest.host_failures}
        assert "b" in quarantined  # the dead host is one failure domain
        assert "c" not in quarantined  # partitioned/slow is NOT charged
        assert "a" not in quarantined  # slow is NOT charged
        state = load_journal(path)
        assert set(state.completed) == {
            spec.cell_seed(*c) for c in spec.cells()
        }
        stats = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if json.loads(line).get("kind") == "stats"
        ][-1]
        assert stats["hosts_quarantined"] >= 1
        by_name = {h["name"]: h for h in stats["hosts"]}
        assert by_name["b"]["quarantined"]


# ---------------------------------------------------------------------------
# hypothesis: partition -> expiry -> re-dispatch -> heal -> duplicate
# delivery converges to the same journal rows (pure state machines)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def _tiny_cells_and_rows():
    spec = _spec(
        base_seed=31,
        epsilons=[0.3],
        machine_counts=[2],
        algorithms=["greedy"],
        workload=partial(random_instance, 4),
        repetitions=3,
    )
    cells = [
        (eps, m, rep, spec.cell_seed(eps, m, rep)) for eps, m, rep in spec.cells()
    ]
    rows = {
        seed: run_cell(spec, eps, m, rep, {}) for eps, m, rep, seed in cells
    }
    return spec, tuple(cells), rows


def _network_run(first_idx: int, heal_after: float, decisions: list[int]):
    """Drive CellQueue + HostLink through one fault interleaving.

    Worker 0 lives on partitioned host A, worker 1 on healthy host B.
    Each decision step picks an action; results travel through the
    links (encoded, CRC'd, possibly held by the partition).  The drain
    tail completes every cell via B, then heals A so its stale backlog
    — including duplicates of completed cells — must dedup cleanly.
    Returns the completed rows mapping.
    """
    _, cells, rows_by_seed = _tiny_cells_and_rows()
    queue = CellQueue(list(cells), lease_timeout=0.5, speculate=True)
    chaos = HostChaosPlan(
        partition=(("A", first_idx, heal_after),),
        duplicate=(("A", first_idx),),
    )
    links = {0: HostLink("A", chaos), 1: HostLink("B", chaos)}
    seqs = {0: 0, 1: 0}
    clock = 0.0

    def deliver(messages):
        for message in messages:
            outcome, _ = queue.complete(
                message["from"], message["seed"], rows_by_seed[message["seed"]]
            )
            assert outcome in ("win", "duplicate", "stale")

    def send_result(worker: int):
        lease = queue.leases.get(worker)
        if lease is None:
            return
        seqs[worker] += 1
        raw = encode_message(
            "result", seqs[worker], seed=lease.seed, **{"from": worker}
        )
        deliver(links[worker].receive(raw, clock))

    for decision in decisions:
        clock += 0.1
        action = decision % 4
        worker = (decision // 4) % 2
        if action == 0:
            if worker not in queue.leases:
                queue.next_lease(worker, clock)
        elif action == 1:
            queue.heartbeat(worker, clock)
        elif action == 2:
            send_result(worker)
        else:
            for lease in queue.expired(clock):
                queue.release(
                    lease.worker, "expired: partition", charge_cell=False
                )
        deliver(links[0].flush(clock))

    # Drain: B finishes everything the partition stranded.
    while not queue.done:
        clock += 0.6
        for lease in queue.expired(clock):
            queue.release(lease.worker, "expired: drain", charge_cell=False)
        if 1 not in queue.leases:
            if queue.next_lease(1, clock) is None and not queue.done:
                clock += 0.6
                continue
        send_result(1)
    # Heal: A's stale backlog (with an injected duplicate) lands late.
    clock += heal_after + 1.0
    deliver(links[0].flush(clock))
    return queue.completed


class TestNetworkConvergence:
    @given(
        first_idx=st.integers(min_value=0, max_value=3),
        heal_after=st.floats(min_value=0.1, max_value=2.0),
        decisions=st.lists(
            st.integers(min_value=0, max_value=7), min_size=0, max_size=30
        ),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_partition_interleaving_converges(
        self, first_idx, heal_after, decisions
    ):
        """Every partition/expiry/re-dispatch/heal/duplicate interleaving
        yields the same completed rows, with no speculation mismatch."""
        _, cells, rows_by_seed = _tiny_cells_and_rows()
        completed = _network_run(first_idx, heal_after, decisions)
        assert set(completed) == {seed for _, _, _, seed in cells}
        for seed, rows in completed.items():
            assert rows == rows_by_seed[seed]
