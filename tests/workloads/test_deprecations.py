"""The PR-4 deprecation cycle: every shim warns once, at the call site.

Four legacy surfaces survive as ``DeprecationWarning`` shims —
``run_sweep``, ``run_sweep_parallel``, ``run_sweep_resilient`` and the
``OptBracket.relative_gap()`` call form.  CI runs the suite under
``-W error::DeprecationWarning``, so these tests pin two things the
functional shim tests don't: the warning is *attributed to the caller's
line* (``stacklevel=2`` — an errored warning points users at their own
code, not at the shim's internals), and the replacement surfaces emit no
deprecation noise of their own.
"""

import warnings
from functools import partial

import pytest

from repro.offline.bracket import opt_bracket
from repro.workloads.execute import ExecutionPolicy, execute_sweep
from repro.workloads.random_instances import random_instance
from repro.workloads.sweep import SweepSpec


def _spec() -> SweepSpec:
    return SweepSpec(
        epsilons=[0.5],
        machine_counts=[1],
        algorithms=["greedy"],
        workload=partial(random_instance, 4),
        repetitions=1,
        base_seed=11,
    )


def _sole_deprecation(
    recorded: list[warnings.WarningMessage],
) -> warnings.WarningMessage:
    deprecations = [
        r for r in recorded if issubclass(r.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1, (
        f"expected exactly one DeprecationWarning, got "
        f"{[str(r.message) for r in deprecations]}"
    )
    return deprecations[0]


class TestShimWarningsAttributeToCallSite:
    """Each shim's warning names this file — not the shim module."""

    def test_run_sweep(self):
        from repro.workloads.sweep import run_sweep

        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            rows = run_sweep(_spec())
        record = _sole_deprecation(recorded)
        assert "run_sweep is deprecated" in str(record.message)
        assert record.filename == __file__
        assert rows  # the shim still delegates to the real path

    def test_run_sweep_parallel(self):
        from repro.workloads.parallel import run_sweep_parallel

        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            rows = run_sweep_parallel(_spec(), max_workers=1)
        record = _sole_deprecation(recorded)
        assert "run_sweep_parallel is deprecated" in str(record.message)
        assert record.filename == __file__
        assert rows

    def test_run_sweep_resilient(self):
        from repro.workloads.resilient import run_sweep_resilient

        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            result = run_sweep_resilient(_spec(), max_workers=1)
        record = _sole_deprecation(recorded)
        assert "run_sweep_resilient is deprecated" in str(record.message)
        assert record.filename == __file__
        assert result.complete

    def test_relative_gap_call_form(self, tiny_instance):
        bracket = opt_bracket(tiny_instance)
        with warnings.catch_warnings(record=True) as recorded:
            warnings.simplefilter("always")
            value = bracket.relative_gap()
        record = _sole_deprecation(recorded)
        assert "drop the call parentheses" in str(record.message)
        assert record.filename == __file__
        assert value == float(bracket.relative_gap)


class TestReplacementsAreQuiet:
    """The documented replacements run clean under -W error."""

    def test_execute_sweep_emits_no_deprecations(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = execute_sweep(_spec(), ExecutionPolicy())
        assert result.complete

    def test_relative_gap_property_emits_no_deprecations(self, tiny_instance):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            gap = float(opt_bracket(tiny_instance).relative_gap)
        assert gap >= 0.0

    @pytest.mark.parametrize(
        "module, name",
        [
            ("repro.workloads.sweep", "run_sweep"),
            ("repro.workloads.parallel", "run_sweep_parallel"),
            ("repro.workloads.resilient", "run_sweep_resilient"),
        ],
    )
    def test_shim_docstrings_name_the_removal_version(self, module, name):
        import importlib

        shim = getattr(importlib.import_module(module), name)
        doc = " ".join(shim.__doc__.split())
        assert ".. deprecated:: 1.0" in doc
        assert "removed in version 2.0" in doc
