"""Tests for the append-only sweep checkpoint journal."""

import json
from functools import partial

import pytest

from repro.testing import bitflip
from repro.workloads.journal import (
    JournalError,
    JournalMismatchError,
    SweepJournal,
    load_journal,
    row_crc,
    row_from_payload,
    row_to_payload,
    salvage_journal,
    spec_fingerprint,
    verify_journal,
)
from repro.workloads.execute import ExecutionPolicy, execute_sweep
from repro.workloads.random_instances import random_instance
from repro.workloads.sweep import SweepSpec


def _spec(**overrides) -> SweepSpec:
    defaults = dict(
        epsilons=[0.3],
        machine_counts=[1],
        algorithms=["greedy"],
        workload=partial(random_instance, 6),
        repetitions=2,
        base_seed=5,
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestRowSerialization:
    def test_bit_identical_roundtrip(self):
        rows = execute_sweep(_spec()).rows
        for row in rows:
            assert row_from_payload(row_to_payload(row)) == row

    def test_json_roundtrip_preserves_floats(self, tmp_path):
        import json

        rows = execute_sweep(_spec()).rows
        payloads = json.loads(json.dumps([row_to_payload(r) for r in rows]))
        assert [row_from_payload(p) for p in payloads] == rows

    def test_wrong_width_rejected(self):
        with pytest.raises(JournalError, match="fields"):
            row_from_payload([1, 2, 3])


class TestJournalLifecycle:
    def test_create_record_load(self, tmp_path):
        spec = _spec()
        rows = execute_sweep(spec).rows
        path = tmp_path / "sweep.jsonl"
        with SweepJournal.create(path, spec) as journal:
            for i, (eps, m, rep) in enumerate(spec.cells()):
                journal.record_cell(spec.cell_seed(eps, m, rep), eps, m, rep, [rows[i]])
        state = load_journal(path)
        assert state.fingerprint == spec_fingerprint(spec)
        assert not state.truncated_tail
        replayed = [r for cell in state.completed.values() for r in cell]
        assert sorted(replayed, key=lambda r: r.repetition) == rows

    def test_resume_validates_fingerprint(self, tmp_path):
        spec = _spec()
        path = tmp_path / "sweep.jsonl"
        SweepJournal.create(path, spec).close()
        with pytest.raises(JournalMismatchError, match="base_seed"):
            SweepJournal.resume(path, _spec(base_seed=6))

    def test_resume_rejects_different_workload(self, tmp_path):
        spec = _spec()
        path = tmp_path / "sweep.jsonl"
        SweepJournal.create(path, spec).close()
        other = _spec(workload=partial(random_instance, 7))
        with pytest.raises(JournalMismatchError, match="workload"):
            SweepJournal.resume(path, other)

    def test_truncated_tail_tolerated(self, tmp_path):
        spec = _spec()
        rows = execute_sweep(spec).rows
        path = tmp_path / "sweep.jsonl"
        with SweepJournal.create(path, spec) as journal:
            cell = next(iter(spec.cells()))
            journal.record_cell(spec.cell_seed(*cell), *cell, [rows[0]])
        # Simulate a hard kill mid-append: a partial trailing record.
        with open(path, "a") as fh:
            fh.write('{"kind": "cell", "seed": 99, "rows": [[0.3')
        state = load_journal(path)
        assert state.truncated_tail
        assert len(state.completed) == 1

    def test_corrupt_middle_record_rejected(self, tmp_path):
        spec = _spec()
        path = tmp_path / "sweep.jsonl"
        SweepJournal.create(path, spec).close()
        with open(path, "a") as fh:
            fh.write("not json\n")
            fh.write('{"kind": "failure", "failure": {"seed": 1}}\n')
        with pytest.raises(JournalError, match="corrupt"):
            load_journal(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text('{"kind": "failure", "failure": {"seed": 1}}\n')
        with pytest.raises(JournalError, match="no header"):
            load_journal(path)

    def test_unknown_kind_rejected(self, tmp_path):
        spec = _spec()
        path = tmp_path / "sweep.jsonl"
        SweepJournal.create(path, spec).close()
        with open(path, "a") as fh:
            fh.write('{"kind": "mystery"}\n')
            fh.write('{"kind": "failure", "failure": {"seed": 1}}\n')
        with pytest.raises(JournalError, match="unknown journal record"):
            load_journal(path)

    def test_failure_record_roundtrip(self, tmp_path):
        # A failure's own "kind" (crash/timeout/...) must not shadow the
        # record kind — a journal with quarantined cells has to stay loadable.
        spec = _spec()
        path = tmp_path / "sweep.jsonl"
        failure = {
            "epsilon": 0.3,
            "machines": 1,
            "repetition": 0,
            "seed": 42,
            "attempts": 3,
            "kind": "crash",
            "detail": "worker process died with exit code -9",
            "history": ["crash: ...", "crash: ...", "crash: ..."],
        }
        with SweepJournal.create(path, spec) as journal:
            journal.record_failure(failure)
        state = load_journal(path)
        assert state.failures == [failure]
        assert not state.truncated_tail

    def test_create_refuses_existing_journal(self, tmp_path):
        spec = _spec()
        path = tmp_path / "sweep.jsonl"
        SweepJournal.create(path, spec).close()
        with pytest.raises(JournalError, match="already exists"):
            SweepJournal.create(path, spec)
        # The refusal must not have clobbered the original journal.
        assert load_journal(path).fingerprint == spec_fingerprint(spec)

    def test_create_accepts_empty_placeholder_file(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.touch()
        SweepJournal.create(path, _spec()).close()
        assert load_journal(path).fingerprint == spec_fingerprint(_spec())

    def test_resume_truncates_partial_tail_before_appending(self, tmp_path):
        # Appending onto a partial trailing line would glue the new record
        # to the fragment: the record silently vanishes and, once another
        # record follows, the merged line corrupts every later load.
        spec = _spec()
        rows = execute_sweep(spec).rows
        cells = list(spec.cells())
        path = tmp_path / "sweep.jsonl"
        with SweepJournal.create(path, spec) as journal:
            journal.record_cell(spec.cell_seed(*cells[0]), *cells[0], [rows[0]])
        for _ in range(2):  # kill -> resume -> kill -> resume
            with open(path, "a") as fh:
                fh.write('{"kind": "cell", "seed": 99, "rows": [[0.3')
            journal, state = SweepJournal.resume(path, spec)
            assert state.truncated_tail
            with journal:
                journal.record_cell(spec.cell_seed(*cells[1]), *cells[1], [rows[1]])
            state = load_journal(path)
            assert not state.truncated_tail
            assert set(state.completed) == {spec.cell_seed(*c) for c in cells[:2]}

    def test_resume_drops_corrupt_final_line_with_newline(self, tmp_path):
        # A corrupt *complete* last line (kill after the newline of a partial
        # buffer flush) must also be chopped, or it ends up mid-file.
        spec = _spec()
        path = tmp_path / "sweep.jsonl"
        SweepJournal.create(path, spec).close()
        with open(path, "a") as fh:
            fh.write('{"kind": "cell", "seed": 99, "rows": [[0.3\n')
        journal, state = SweepJournal.resume(path, spec)
        assert state.truncated_tail
        journal.close()
        assert not load_journal(path).truncated_tail

    def test_fingerprint_is_address_free(self):
        # partial() reprs embed function addresses; the fingerprint must not.
        a = spec_fingerprint(_spec())
        b = spec_fingerprint(_spec())
        assert a == b
        assert "0x" not in str(a)


def _sealed_journal(tmp_path, name="sweep.jsonl"):
    """A sealed two-cell journal on disk, plus its spec and rows."""
    spec = _spec()
    rows = execute_sweep(spec).rows
    path = tmp_path / name
    cells = list(spec.cells())
    with SweepJournal.create(path, spec) as journal:
        for i, cell in enumerate(cells):
            journal.record_cell(spec.cell_seed(*cell), *cell, [rows[i]])
        journal.record_seal()
    return spec, rows, path


def _flip_rows_payload(path, line_index=1, seed=0):
    """Bit-flip inside the ``rows`` payload of one cell line; its seed."""
    lines = path.read_bytes().split(b"\n")
    offset = sum(len(l) + 1 for l in lines[:line_index])
    target = lines[line_index]
    rows_at = target.find(b'"rows"') + len(b'"rows"')
    bitflip(path, seed=seed, count=1, lo=offset + rows_at, hi=offset + len(target) - 20)
    return json.loads(target)["seed"]


class TestIntegrity:
    def test_clean_sealed_journal_verifies(self, tmp_path):
        _, _, path = _sealed_journal(tmp_path)
        state = load_journal(path)
        assert state.sealed
        assert state.integrity == "verified"
        assert set(state.integrity_by_seed.values()) == {"verified"}
        verification = verify_journal(path)
        assert verification.ok and verification.status == "verified"

    def test_row_crc_stable_under_reformatting(self, tmp_path):
        # The CRC covers (seed, rows) canonically, so a journal that is
        # parsed and re-serialised differently still verifies.
        _, _, path = _sealed_journal(tmp_path)
        records = [json.loads(l) for l in path.read_text().splitlines()]
        for record in records:
            if record["kind"] == "cell":
                roundtripped = json.loads(json.dumps(record, indent=2))
                assert record["crc"] == row_crc(
                    roundtripped["seed"], roundtripped["rows"]
                )

    def test_bitflip_detected_strict_and_quarantined_in_salvage(self, tmp_path):
        spec, _, path = _sealed_journal(tmp_path)
        damaged_seed = _flip_rows_payload(path)
        with pytest.raises(JournalError):  # crc-mismatch or unparsable
            load_journal(path)
        state = load_journal(path, salvage=True)
        assert state.integrity == "salvaged"
        assert state.corruption and len(state.corruption.events) >= 1
        # Only the damaged cell is lost; the other survives intact.
        intact = {spec.cell_seed(*c) for c in spec.cells()} - {damaged_seed}
        assert intact <= set(state.completed)
        assert damaged_seed not in state.completed
        assert verify_journal(path).status == "corrupt"

    def test_corrupt_midfile_line_recoverable_in_salvage_mode(self, tmp_path):
        # Satellite: mid-file garbage no longer makes the journal
        # unloadable — strict keeps today's fail-fast behaviour.
        _, _, path = _sealed_journal(tmp_path)
        lines = path.read_text().splitlines(keepends=True)
        lines.insert(2, "not json\n")
        path.write_text("".join(lines))
        with pytest.raises(JournalError, match="corrupt"):
            load_journal(path)
        state = load_journal(path, salvage=True)
        assert len(state.completed) == 2  # every real cell survives
        kinds = [e.kind for e in state.corruption.events]
        assert "unparsable" in kinds

    def test_salvage_journal_rewrites_clean_and_reseals(self, tmp_path):
        spec, _, path = _sealed_journal(tmp_path)
        damaged_seed = _flip_rows_payload(path)
        state, report = salvage_journal(path)
        assert report.quarantined_seeds <= {damaged_seed} or report.events
        # The rewritten journal is strict-loadable, sealed and verified.
        clean = load_journal(path)
        assert clean.sealed
        assert clean.seal["salvaged"] is True
        verification = verify_journal(path)
        assert verification.ok
        assert "salvaged" in verification.detail

    def test_pre_checksum_journal_loads_with_unknown_integrity(self, tmp_path):
        # Backward compatibility: journals written before the CRC/seal
        # existed load unchanged, just with integrity "unknown".
        _, rows, path = _sealed_journal(tmp_path)
        records = [json.loads(l) for l in path.read_text().splitlines()]
        stripped = []
        for record in records:
            if record["kind"] == "seal":
                continue
            record.pop("crc", None)
            stripped.append(json.dumps(record) + "\n")
        path.write_text("".join(stripped))
        state = load_journal(path)
        assert not state.sealed
        assert state.integrity == "unknown"
        assert set(state.integrity_by_seed.values()) == {"unknown"}
        assert len(state.completed) == 2
        assert verify_journal(path).status == "unsealed"

    def test_append_after_seal_unseals_until_resealed(self, tmp_path):
        spec, _, path = _sealed_journal(tmp_path)
        journal, state = SweepJournal.resume(path, spec)
        assert state.sealed
        with journal:
            journal.record_stats({"wall_seconds": 0.0, "interrupted": False})
            assert not load_journal(path).sealed
            journal.record_seal()
        resealed = load_journal(path)
        assert resealed.sealed
        assert resealed.integrity == "verified"

    def test_resume_salvage_repairs_and_refills(self, tmp_path):
        # The end-to-end contract: a bit-flipped journal, resumed with
        # salvage, re-runs exactly the damaged cells and converges on the
        # same rows as an undamaged run.
        spec = _spec()
        path = tmp_path / "sweep.jsonl"
        reference = execute_sweep(
            spec, ExecutionPolicy(journal=path)
        ).rows
        _flip_rows_payload(path)
        # Depending on which byte the flip hits, strict resume fails as a
        # checksum mismatch (JournalIntegrityError) or an unparsable
        # record (JournalError) — either way it must not load silently.
        with pytest.raises(JournalError):
            execute_sweep(spec, ExecutionPolicy(journal=path, resume=True))
        result = execute_sweep(
            spec, ExecutionPolicy(journal=path, resume=True, salvage=True)
        )
        assert result.complete
        assert result.rows == reference
        assert result.manifest.cells_completed == 1  # only the damaged cell re-ran
        assert verify_journal(path).ok

    def test_salvage_policy_requires_resume(self):
        with pytest.raises(ValueError, match="salvage"):
            ExecutionPolicy(journal="x.jsonl", salvage=True)
