"""Tests for the MMPP and batch arrival generators."""

import numpy as np
import pytest

from repro.workloads.arrivals import batch_arrival_instance, mmpp_instance


class TestMmpp:
    def test_basic_shape(self):
        inst = mmpp_instance(80, 3, 0.2, seed=1)
        assert len(inst) == 80
        assert np.all(np.diff(inst.releases()) >= 0)
        inst.validate()

    def test_deterministic(self):
        a = mmpp_instance(30, 2, 0.1, seed=5)
        b = mmpp_instance(30, 2, 0.1, seed=5)
        assert a.to_json() == b.to_json()

    def test_storm_factor_validation(self):
        with pytest.raises(ValueError, match="storm_rate_factor"):
            mmpp_instance(10, 1, 0.2, storm_rate_factor=1.0)

    def test_burstier_than_poisson(self):
        # Squared coefficient of variation of inter-arrival gaps: Poisson
        # has ~1; MMPP with strong storms is markedly above.
        inst = mmpp_instance(800, 2, 0.2, seed=3, storm_rate_factor=20.0)
        gaps = np.diff(inst.releases())
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 > 1.5

    def test_runs_through_algorithms(self):
        from repro.baselines.registry import run_algorithm

        inst = mmpp_instance(60, 3, 0.15, seed=2)
        for name in ("threshold", "greedy"):
            result = run_algorithm(name, inst)
            result.detail.audit()


class TestBatchArrivals:
    def test_batches_share_release(self):
        inst = batch_arrival_instance(5, 2, 0.2, seed=1)
        by_batch: dict[int, set[float]] = {}
        for job in inst:
            by_batch.setdefault(job.tag("batch"), set()).add(job.release)
        for releases in by_batch.values():
            assert len(releases) == 1

    def test_tight_slack(self):
        inst = batch_arrival_instance(4, 2, 0.3, seed=2)
        for job in inst:
            assert job.has_tight_slack(0.3)

    def test_deterministic(self):
        a = batch_arrival_instance(6, 2, 0.2, seed=9)
        b = batch_arrival_instance(6, 2, 0.2, seed=9)
        assert a.to_json() == b.to_json()

    def test_mean_batch_size_scales(self):
        small = batch_arrival_instance(40, 2, 0.2, seed=4, mean_batch_size=2.0)
        large = batch_arrival_instance(40, 2, 0.2, seed=4, mean_batch_size=12.0)
        assert len(large) > len(small)
