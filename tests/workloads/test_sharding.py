"""Sharded sweep execution: deterministic partition + journal merge.

The acceptance bar (ISSUE 4): a grid split into shards, executed
independently (each with its own stamped journal), then merged, must be
row-for-row bit-identical to the single-host resilient run; every cell
lands in exactly one shard; merge detects missing coverage, tolerates a
truncated trailing line, deduplicates overlapping journals, and refuses
fingerprint or shard-stamp mismatches loudly.
"""

import json
from functools import partial
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testing.chaos import truncate_tail
from repro.workloads.execute import ExecutionPolicy, execute_sweep
from repro.workloads.journal import (
    ROW_FIELDS,
    JournalError,
    JournalIntegrityError,
    JournalMismatchError,
    load_journal,
    row_crc,
    spec_fingerprint,
    verify_journal,
)
from repro.workloads.random_instances import random_instance
from repro.workloads.sharding import (
    ShardPlan,
    cell_cost,
    fingerprint_cell_seed,
    fingerprint_cells,
    merge_journals,
    shard_journal_paths,
)
from repro.workloads.sweep import SweepSpec


def _spec(base_seed: int = 5, **overrides) -> SweepSpec:
    defaults = dict(
        epsilons=[0.2, 0.5],
        machine_counts=[1, 2],
        algorithms=["greedy"],
        workload=partial(random_instance, 6),
        repetitions=2,
        base_seed=base_seed,
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


def _run_shard(spec, n, i, path, **policy_kwargs):
    return execute_sweep(
        spec,
        ExecutionPolicy(shards=n, shard_index=i, journal=path, **policy_kwargs),
    )


class TestShardPlan:
    @given(
        n_shards=st.integers(1, 8),
        n_eps=st.integers(1, 3),
        machines=st.lists(st.integers(1, 5), min_size=1, max_size=3, unique=True),
        reps=st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_cell_lands_in_exactly_one_shard(
        self, n_shards, n_eps, machines, reps
    ):
        spec = _spec(
            epsilons=[round(0.1 * (i + 1), 3) for i in range(n_eps)],
            machine_counts=sorted(machines),
            repetitions=reps,
        )
        plan = ShardPlan.build(spec, n_shards)
        assert plan.n_shards == n_shards
        flattened = [cell for shard in plan.shards for cell in shard]
        assert sorted(flattened) == sorted(spec.cells())
        assert len(flattened) == len(set(flattened))

    def test_deterministic_and_fingerprint_bound(self):
        spec = _spec()
        assert ShardPlan.build(spec, 3) == ShardPlan.build(spec, 3)
        assert ShardPlan.build(spec, 3).fingerprint == spec_fingerprint(spec)
        # A structurally different spec partitions independently.
        other = ShardPlan.build(_spec(base_seed=6), 3)
        assert other.fingerprint != spec_fingerprint(spec)

    def test_shard_cells_keep_canonical_order(self):
        spec = _spec(machine_counts=[1, 2, 3], repetitions=3)
        plan = ShardPlan.build(spec, 4)
        canonical = {cell: i for i, cell in enumerate(spec.cells())}
        for k in range(plan.n_shards):
            indices = [canonical[c] for c in plan.cells_for(k)]
            assert indices == sorted(indices)

    def test_cost_balance(self):
        # Heterogeneous machine counts: LPT keeps max/mean cost low.
        spec = _spec(machine_counts=[1, 2, 4, 8], repetitions=3)
        plan = ShardPlan.build(spec, 4)
        assert plan.balance_ratio <= 4 / 3 + 1e-9
        assert sum(plan.costs()) == sum(cell_cost(*c) for c in spec.cells())

    def test_bad_arguments_rejected(self):
        spec = _spec()
        with pytest.raises(ValueError, match="n_shards"):
            ShardPlan.build(spec, 0)
        plan = ShardPlan.build(spec, 2)
        with pytest.raises(ValueError, match="out of range"):
            plan.cells_for(2)

    def test_fingerprint_cells_cover_the_grid(self):
        spec = _spec()
        fp = spec_fingerprint(spec)
        assert fingerprint_cells(fp) == list(spec.cells())
        for cell in spec.cells():
            assert fingerprint_cell_seed(fp, cell) == spec.cell_seed(*cell)


class TestShardedExecution:
    def test_four_shard_merge_bit_identical_to_single_host(self, tmp_path):
        spec = _spec()
        single = execute_sweep(spec, ExecutionPolicy(workers=2))
        paths = shard_journal_paths(tmp_path / "sweep.jsonl", 4)
        for i, path in enumerate(paths):
            result = _run_shard(spec, 4, i, path)
            assert result.complete
        merged = merge_journals(paths, out=tmp_path / "merged.jsonl")
        assert merged.complete
        assert merged.rows == single.rows
        assert merged.manifest.cells_completed == merged.manifest.cells_total
        assert merged.duplicates == 0 and merged.missing == []
        # Per-shard stats trailers surface as timing + straggler ratio.
        assert all(info.wall_seconds is not None for info in merged.shards)
        assert merged.straggler_ratio is not None
        # The merged journal loads, re-merges and equals the same rows —
        # and is itself sealed and checksummed like any shard journal.
        again = merge_journals([tmp_path / "merged.jsonl"])
        assert again.rows == single.rows
        assert verify_journal(tmp_path / "merged.jsonl").ok

    def test_shard_journals_carry_the_stamp(self, tmp_path):
        spec = _spec()
        path = tmp_path / "shard1.jsonl"
        _run_shard(spec, 3, 1, path)
        state = load_journal(path)
        assert state.shard == (1, 3)
        assert len(state.completed) == len(ShardPlan.build(spec, 3).cells_for(1))

    def test_merged_cache_stats_summed(self, tmp_path):
        spec = _spec()
        paths = shard_journal_paths(tmp_path / "sweep.jsonl", 2)
        for i, path in enumerate(paths):
            _run_shard(spec, 2, i, path, cache=True, cache_dir=tmp_path / "cache")
        merged = merge_journals(paths)
        assert merged.cache_stats is not None
        stats = merged.cache_stats
        assert stats["hits"] + stats["misses"] == merged.manifest.cells_total


class TestMergeCoverage:
    def test_missing_shard_reported(self, tmp_path):
        spec = _spec()
        paths = shard_journal_paths(tmp_path / "sweep.jsonl", 3)
        for i in (0, 2):
            _run_shard(spec, 3, i, paths[i])
        merged = merge_journals([paths[0], paths[2]])
        assert not merged.complete
        plan = ShardPlan.build(spec, 3)
        assert sorted(merged.missing) == sorted(plan.cells_for(1))
        assert "missing" in merged.coverage_report()

    def test_merged_journal_is_resumable_and_fills_holes(self, tmp_path):
        spec = _spec()
        paths = shard_journal_paths(tmp_path / "sweep.jsonl", 3)
        for i in (0, 2):
            _run_shard(spec, 3, i, paths[i])
        out = tmp_path / "merged.jsonl"
        merged = merge_journals([paths[0], paths[2]], out=out)
        assert not merged.complete
        resumed = execute_sweep(spec, ExecutionPolicy(journal=out, resume=True))
        assert resumed.complete
        assert resumed.rows == execute_sweep(spec).rows
        assert resumed.manifest.cells_replayed == merged.manifest.cells_completed

    def test_truncated_tail_counts_cell_as_missing(self, tmp_path):
        spec = _spec()
        paths = shard_journal_paths(tmp_path / "sweep.jsonl", 2)
        for i, path in enumerate(paths):
            _run_shard(spec, 2, i, path)
        # Chop the seal, the stats trailer and part of the final cell
        # record: the loader must tolerate the partial line and drop only
        # that cell.
        damaged = Path(paths[1])
        lines = damaged.read_bytes().rstrip(b"\n").split(b"\n")
        truncate_tail(damaged, len(lines[-1]) + len(lines[-2]) + 12)
        merged = merge_journals(paths)
        assert merged.shards[1].truncated_tail
        assert not merged.complete
        assert len(merged.missing) == 1
        assert "truncated tail" in merged.coverage_report()

    def test_overlapping_journals_deduplicated(self, tmp_path):
        spec = _spec()
        full = tmp_path / "full.jsonl"
        execute_sweep(spec, ExecutionPolicy(journal=full))
        shard0 = tmp_path / "shard0.jsonl"
        _run_shard(spec, 3, 0, shard0)
        merged = merge_journals([full, shard0])
        assert merged.complete
        assert merged.duplicates == len(ShardPlan.build(spec, 3).cells_for(0))
        assert merged.rows == execute_sweep(spec).rows

    def test_duplicate_shard_uploads_deduplicated(self, tmp_path):
        spec = _spec()
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        _run_shard(spec, 2, 0, a)
        b.write_bytes(a.read_bytes())
        merged = merge_journals([a, b])
        assert merged.duplicates == len(ShardPlan.build(spec, 2).cells_for(0))
        assert not merged.complete  # shard 1 never ran


class TestMergeValidation:
    def test_fingerprint_mismatch_rejected(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        execute_sweep(_spec(base_seed=5), ExecutionPolicy(journal=a))
        execute_sweep(_spec(base_seed=6), ExecutionPolicy(journal=b))
        with pytest.raises(JournalMismatchError, match="base_seed"):
            merge_journals([a, b])
        with pytest.raises(JournalMismatchError, match="spec"):
            merge_journals([a], spec=_spec(base_seed=6))

    def test_conflicting_rows_rejected(self, tmp_path):
        # Both copies carry *valid* checksums yet different rows: genuinely
        # diverging runs, which no integrity level can arbitrate.
        spec = _spec()
        a = tmp_path / "a.jsonl"
        execute_sweep(spec, ExecutionPolicy(journal=a))
        records = [json.loads(line) for line in a.read_text().splitlines()]
        load_index = ROW_FIELDS.index("accepted_load")
        for record in records:
            if record["kind"] == "cell":
                record["rows"][0][load_index] += 1.0
                record["crc"] = row_crc(record["seed"], record["rows"])
                break
        b = tmp_path / "b.jsonl"
        b.write_text(
            "".join(json.dumps(r) + "\n" for r in records if r["kind"] != "seal")
        )
        with pytest.raises(JournalError, match="conflicting rows"):
            merge_journals([a, b])

    def test_merge_refuses_to_clobber_output(self, tmp_path):
        spec = _spec()
        a = tmp_path / "a.jsonl"
        execute_sweep(spec, ExecutionPolicy(journal=a))
        out = tmp_path / "merged.jsonl"
        out.write_text("not empty\n")
        with pytest.raises(JournalError, match="already exists"):
            merge_journals([a], out=out)

    def test_merge_needs_at_least_one_path(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_journals([])


class TestMergeIntegrity:
    """Overlapping shards disagreeing because one copy is corrupt.

    The checksummed copy must win, and the event must be reported — in
    ``MergeResult.corruption`` when the damage is CRC-detectable, in
    ``MergeResult.conflicts`` when the damaged copy predates checksums —
    never silently deduplicated.
    """

    @staticmethod
    def _tampered_copy(src, dest, *, strip_crcs):
        """Copy *src* with one cell's rows mutated (and no seal).

        With ``strip_crcs`` the copy looks like a pre-checksum journal
        whose damage is undetectable by CRC; without it the mutated
        record keeps its now-stale CRC, making the damage detectable.
        Returns the tampered cell's seed.
        """
        records = [json.loads(line) for line in src.read_text().splitlines()]
        load_index = ROW_FIELDS.index("accepted_load")
        tampered = None
        for record in records:
            if record["kind"] != "cell":
                continue
            if strip_crcs:
                del record["crc"]
            if tampered is None:
                record["rows"][0][load_index] += 1.0
                tampered = record["seed"]
                if not strip_crcs:
                    break
        dest.write_text(
            "".join(json.dumps(r) + "\n" for r in records if r["kind"] != "seal")
        )
        return tampered

    def test_crc_detectable_corruption_quarantined_and_reported(self, tmp_path):
        spec = _spec()
        a = tmp_path / "a.jsonl"
        execute_sweep(spec, ExecutionPolicy(journal=a))
        b = tmp_path / "b.jsonl"
        seed = self._tampered_copy(a, b, strip_crcs=False)
        reference = execute_sweep(spec).rows
        for order in ([a, b], [b, a]):
            merged = merge_journals(order)
            # The intact copy wins regardless of merge order ...
            assert merged.complete
            assert merged.rows == reference
            # ... and the quarantine is reported, not silently deduped.
            assert len(merged.corruption) == 1
            assert merged.corruption[0].quarantined_seeds == {seed}
            assert "corrupt record(s) quarantined" in merged.coverage_report()
        # Strict mode refuses the damaged input outright.
        with pytest.raises(JournalIntegrityError, match="checksum mismatch"):
            merge_journals([a, b], salvage=False)

    def test_verified_copy_beats_unchecksummed_divergent_copy(self, tmp_path):
        spec = _spec()
        a = tmp_path / "a.jsonl"
        execute_sweep(spec, ExecutionPolicy(journal=a))
        b = tmp_path / "b.jsonl"
        seed = self._tampered_copy(a, b, strip_crcs=True)
        reference = execute_sweep(spec).rows
        for order in ([a, b], [b, a]):
            merged = merge_journals(order)
            assert merged.complete
            assert merged.rows == reference
            assert [c.seed for c in merged.conflicts] == [seed]
            conflict = merged.conflicts[0]
            assert conflict.winner == str(a)
            assert conflict.winner_integrity == "verified"
            assert conflict.loser_integrity == "unknown"
            assert "conflict on cell" in merged.coverage_report()

    def test_merge_verify_requires_sealed_checksummed_inputs(self, tmp_path):
        spec = _spec()
        a = tmp_path / "a.jsonl"
        execute_sweep(spec, ExecutionPolicy(journal=a))
        merged = merge_journals([a], require_verified=True)
        assert merged.complete and merged.shards[0].sealed
        # An unsealed copy of the same journal is refused under --verify.
        unsealed = tmp_path / "unsealed.jsonl"
        unsealed.write_text(
            "".join(
                line + "\n"
                for line in a.read_text().splitlines()
                if json.loads(line)["kind"] != "seal"
            )
        )
        with pytest.raises(JournalIntegrityError, match="no final seal"):
            merge_journals([unsealed], require_verified=True)


class TestShardStampResume:
    def test_resume_with_wrong_shard_flags_fails_fast(self, tmp_path):
        spec = _spec()
        path = tmp_path / "shard.jsonl"
        _run_shard(spec, 3, 0, path)
        with pytest.raises(JournalError) as err:
            execute_sweep(
                spec,
                ExecutionPolicy(shards=4, shard_index=0, journal=path, resume=True),
            )
        message = str(err.value)
        assert "n_shards=3" in message and "n_shards=4" in message
        # Resuming it as an unsharded journal is equally wrong.
        with pytest.raises(JournalError, match="shard_index"):
            execute_sweep(spec, ExecutionPolicy(journal=path, resume=True))

    def test_resume_with_matching_flags_replays(self, tmp_path):
        spec = _spec()
        path = tmp_path / "shard.jsonl"
        first = _run_shard(spec, 3, 0, path)
        again = _run_shard(spec, 3, 0, path, resume=True)
        assert again.rows == first.rows
        assert again.manifest.cells_replayed == again.manifest.cells_total
        assert again.manifest.cells_completed == 0
