"""Verified journal transport: backends, retries, salvage, quarantine.

The acceptance bar (ISSUE 5): journals pulled through a flaky transport
must arrive bit-identical or be loudly salvaged — a corrupt shard
degrades coverage by exactly its damaged rows, the damaged cells refill
on resume, and the final merged dataset is byte-identical to an
unsharded run.  Chaos faults (``bitflip``, ``drop_transfer``) drive
every failure path deterministically.
"""

import json
from functools import partial
from pathlib import Path

import pytest

from repro.testing import ChaosTransport, bitflip, drop_transfer
from repro.workloads.execute import ExecutionPolicy, execute_sweep
from repro.workloads.journal import SweepJournal, load_journal, verify_journal
from repro.workloads.random_instances import random_instance
from repro.workloads.sweep import SweepSpec
from repro.workloads.transport import (
    CommandTransport,
    LocalDirTransport,
    TransferPolicy,
    TransferTimeout,
    TransportError,
    collect_journals,
    decorrelated_delay,
    fetch_resumable,
    transfer_salt,
)


def _spec(**overrides) -> SweepSpec:
    defaults = dict(
        epsilons=[0.3],
        machine_counts=[1],
        algorithms=["greedy"],
        workload=partial(random_instance, 6),
        repetitions=2,
        base_seed=5,
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


def _sealed_journal(tmp_path, name="shard.jsonl"):
    """A sealed journal written by a real (journaled) sweep run."""
    path = tmp_path / name
    execute_sweep(_spec(), ExecutionPolicy(journal=path))
    assert verify_journal(path).ok
    return path


def _flip_rows_payload(path):
    """Bit-flip inside the ``rows`` payload of the first cell line."""
    lines = Path(path).read_bytes().split(b"\n")
    offset = len(lines[0]) + 1
    rows_at = lines[1].find(b'"rows"') + len(b'"rows"')
    bitflip(path, seed=0, count=1, lo=offset + rows_at, hi=offset + len(lines[1]) - 20)
    return json.loads(lines[1])["seed"]


class TestTransferPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="retries"):
            TransferPolicy(retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            TransferPolicy(backoff=-0.1)
        with pytest.raises(ValueError, match="timeout"):
            TransferPolicy(timeout=0.0)

    def test_backoff_doubles(self):
        policy = TransferPolicy(backoff=0.1, jitter=False)
        assert [policy.delay(a) for a in (1, 2, 3)] == [0.1, 0.2, 0.4]


class TestDecorrelatedJitter:
    """Seed-derived jitter: deterministic, spread, exponential-bounded."""

    def test_deterministic_under_fixed_seed(self):
        a = [decorrelated_delay(0.1, n, seed=7, salt=3) for n in (1, 2, 3)]
        b = [decorrelated_delay(0.1, n, seed=7, salt=3) for n in (1, 2, 3)]
        assert a == b

    def test_bounded_by_exponential_envelope(self):
        for attempt in (1, 2, 3, 4):
            full = 0.1 * 2 ** (attempt - 1)
            for salt in range(20):
                d = decorrelated_delay(0.1, attempt, seed=1, salt=salt)
                assert full / 2 <= d <= full

    def test_salts_decorrelate_concurrent_retriers(self):
        # N workers hammering the same flaky host must not synchronize
        # into a retry storm: distinct salts spread the delays.
        delays = {decorrelated_delay(1.0, 1, seed=42, salt=s) for s in range(16)}
        assert len(delays) == 16

    def test_zero_base_stays_zero(self):
        assert decorrelated_delay(0.0, 3, seed=1, salt=2) == 0.0

    def test_policy_delay_jitters_by_default(self):
        policy = TransferPolicy(backoff=0.1, jitter_seed=5)
        jittered = [policy.delay(a, salt=9) for a in (1, 2, 3)]
        assert jittered == [
            decorrelated_delay(0.1, a, seed=5, salt=9) for a in (1, 2, 3)
        ]
        assert jittered != [0.1, 0.2, 0.4]

    def test_transfer_salt_is_stable(self):
        assert transfer_salt("a", "b") == transfer_salt("a", "b")
        assert transfer_salt("a", "b") != transfer_salt("a", "c")


class TestLocalDirTransport:
    def test_fetch_copies_bit_identical(self, tmp_path):
        src = tmp_path / "src.jsonl"
        src.write_bytes(b"payload " * 1000)
        dest = tmp_path / "dest.jsonl"
        total = LocalDirTransport(chunk_size=64).fetch(str(src), dest)
        assert total == src.stat().st_size
        assert dest.read_bytes() == src.read_bytes()

    def test_fetch_resumes_from_offset(self, tmp_path):
        src = tmp_path / "src.jsonl"
        src.write_bytes(b"0123456789" * 100)
        dest = tmp_path / "dest.jsonl"
        dest.write_bytes(src.read_bytes()[:337])  # partial earlier pull
        LocalDirTransport().fetch(str(src), dest, offset=337)
        assert dest.read_bytes() == src.read_bytes()

    def test_missing_source_raises(self, tmp_path):
        with pytest.raises(TransportError, match="cannot open"):
            LocalDirTransport().fetch(str(tmp_path / "nope"), tmp_path / "d")


class TestCommandTransport:
    def test_template_must_have_placeholders(self):
        with pytest.raises(ValueError, match="placeholder"):
            CommandTransport("scp host:journal.jsonl inbox/")

    def test_fetch_via_command(self, tmp_path):
        src = tmp_path / "src.jsonl"
        src.write_bytes(b"hello journal\n")
        dest = tmp_path / "dest.jsonl"
        CommandTransport("cp {source} {dest}").fetch(str(src), dest)
        assert dest.read_bytes() == src.read_bytes()

    def test_failing_command_raises(self, tmp_path):
        transport = CommandTransport("cp {source}.does-not-exist {dest}")
        with pytest.raises(TransportError, match="exited"):
            transport.fetch(str(tmp_path / "src"), tmp_path / "dest")

    def test_command_timeout(self, tmp_path):
        transport = CommandTransport("sh -c 'sleep 2' {source} {dest}")
        with pytest.raises(TransferTimeout):
            transport.fetch(str(tmp_path / "src"), tmp_path / "dest", timeout=0.1)

    def test_stale_partial_never_survives(self, tmp_path):
        # A command owns the whole file: an old partial must not be able
        # to masquerade as the result of the new pull.
        src = tmp_path / "src.jsonl"
        src.write_bytes(b"fresh\n")
        dest = tmp_path / "dest.jsonl"
        dest.write_bytes(b"stale partial bytes")
        CommandTransport("cp {source} {dest}").fetch(str(src), dest)
        assert dest.read_bytes() == b"fresh\n"


class TestFetchResumable:
    def test_dropped_transfers_resume_from_offset(self, tmp_path):
        src = tmp_path / "src.jsonl"
        src.write_bytes(b"x" * 4096 + b"end\n")
        dest = tmp_path / "dest.jsonl"
        flaky = ChaosTransport(LocalDirTransport(), faults=["drop", "drop"])
        delays = []
        attempts = fetch_resumable(
            flaky, str(src), dest, TransferPolicy(retries=2), sleep=delays.append
        )
        assert attempts == 3
        assert dest.read_bytes() == src.read_bytes()
        # Jittered but deterministic: the exact delays replay from the
        # policy seed and the (source, dest) salt, inside the
        # exponential envelope.
        salt = transfer_salt(str(src), dest)
        policy = TransferPolicy(retries=2)
        assert delays == [policy.delay(1, salt), policy.delay(2, salt)]
        assert 0.125 <= delays[0] <= 0.25
        assert 0.25 <= delays[1] <= 0.5

    def test_exhausted_retries_raise_last_error(self, tmp_path):
        src = tmp_path / "src.jsonl"
        src.write_bytes(b"data\n")
        dead = ChaosTransport(LocalDirTransport(), faults=["fail"] * 5)
        with pytest.raises(TransportError, match="injected"):
            fetch_resumable(
                dead, str(src), tmp_path / "d", TransferPolicy(retries=2),
                sleep=lambda _: None,
            )


class TestCollectJournals:
    def test_clean_collection_verifies_and_lands_atomically(self, tmp_path):
        src = _sealed_journal(tmp_path)
        inbox = tmp_path / "inbox"
        result = collect_journals([str(src)], inbox)
        assert result.ok and not result.degraded
        (record,) = result.records
        assert record.status == "verified"
        assert Path(record.dest).read_bytes() == src.read_bytes()
        assert not list((inbox / ".staging").glob("*"))  # nothing left behind
        assert "1 verified" in result.summary()

    def test_transient_corruption_repulled_clean(self, tmp_path):
        # First pull delivers flipped bits; the re-pull succeeds, so the
        # inbox copy is verified and bit-identical — no salvage needed.
        src = _sealed_journal(tmp_path)
        inbox = tmp_path / "inbox"
        flaky = ChaosTransport(LocalDirTransport(), faults=["bitflip"])
        result = collect_journals(
            [str(src)], inbox, transport=flaky, sleep=lambda _: None
        )
        (record,) = result.records
        assert record.status == "verified"
        assert Path(record.dest).read_bytes() == src.read_bytes()

    def test_persistent_corruption_salvaged_and_quarantined(self, tmp_path):
        # The source itself is damaged: every re-pull arrives corrupt, so
        # the intact rows are salvaged and the original quarantined.
        src = _sealed_journal(tmp_path)
        damaged_seed = _flip_rows_payload(src)
        inbox = tmp_path / "inbox"
        result = collect_journals([str(src)], inbox, sleep=lambda _: None)
        (record,) = result.records
        assert record.status == "salvaged"
        assert record.corruption is not None
        # The damaged original is preserved for forensics ...
        quarantined = inbox / "quarantine" / src.name
        assert quarantined.read_bytes() == src.read_bytes()
        # ... the salvaged inbox copy verifies and misses only that cell
        landed = verify_journal(record.dest)
        assert landed.ok
        state = load_journal(record.dest)
        assert damaged_seed not in state.completed
        # ... and the structured sidecar names every quarantined row.
        sidecar = json.loads(Path(str(record.dest) + ".corruption.json").read_text())
        assert sidecar["source"] == str(src)
        assert sidecar["events"]

    def test_persistent_corruption_without_salvage_fails(self, tmp_path):
        src = _sealed_journal(tmp_path)
        _flip_rows_payload(src)
        inbox = tmp_path / "inbox"
        result = collect_journals(
            [str(src)], inbox, salvage=False, sleep=lambda _: None
        )
        (record,) = result.records
        assert record.status == "failed"
        assert "persistently corrupt" in record.detail
        assert not (inbox / src.name).exists()

    def test_non_journal_is_quarantined_whole(self, tmp_path):
        src = tmp_path / "garbage.jsonl"
        src.write_text("this was never a journal\n")
        inbox = tmp_path / "inbox"
        result = collect_journals([str(src)], inbox, sleep=lambda _: None)
        (record,) = result.records
        assert record.status == "quarantined"
        assert (inbox / "quarantine" / "garbage.jsonl").exists()
        assert not (inbox / "garbage.jsonl").exists()

    def test_unreachable_source_reports_failed(self, tmp_path):
        result = collect_journals(
            [str(tmp_path / "missing.jsonl")], tmp_path / "inbox",
            policy=TransferPolicy(retries=1), sleep=lambda _: None,
        )
        (record,) = result.records
        assert record.status == "failed" and not record.ok

    def test_verify_off_is_pull_only(self, tmp_path):
        src = tmp_path / "raw.jsonl"
        src.write_text("anything at all\n")
        result = collect_journals([str(src)], tmp_path / "inbox", verify=False)
        (record,) = result.records
        assert record.status == "unsealed"
        assert Path(record.dest).read_bytes() == src.read_bytes()


class TestChaosFaults:
    def test_bitflip_is_deterministic_and_bounded(self, tmp_path):
        path = tmp_path / "f.bin"
        original = bytes(range(256)) * 4
        path.write_bytes(original)
        offsets = bitflip(path, seed=7, count=3, lo=100, hi=200)
        assert len(offsets) == 3 and all(100 <= o < 200 for o in offsets)
        flipped = path.read_bytes()
        assert len(flipped) == len(original)
        assert {i for i in range(len(original)) if flipped[i] != original[i]} == set(
            offsets
        )
        # Same seed on the same bytes flips the same offsets.
        path.write_bytes(original)
        assert bitflip(path, seed=7, count=3, lo=100, hi=200) == offsets

    def test_drop_transfer_truncates_midstream(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"z" * 1000)
        new_size = drop_transfer(path, seed=3)
        assert 0 < new_size < 1000
        assert path.stat().st_size == new_size


class TestEndToEndDemo:
    """ISSUE 5 acceptance: bitflip one shard of three, collect, salvage,
    resume, and the final merged CSV is byte-identical to the unsharded
    run; ``repro verify`` exits non-zero on the tampered journal and zero
    after repair."""

    def test_full_pipeline_byte_identical(self, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        base = [
            "sweep", "--epsilons", "0.25,0.5", "--machines", "1,2",
            "--algorithms", "greedy", "--n", "6", "--repetitions", "1",
            "--seed", "7", "--no-cache",
        ]
        shards = [f"shard{i}.jsonl" for i in range(3)]
        for i, shard in enumerate(shards):
            assert main(base + ["--shards", "3", "--shard-index", str(i),
                                "--journal", shard]) == 0
        assert main(["verify", *shards]) == 0

        damaged_seed = _flip_rows_payload(tmp_path / shards[1])
        assert main(["verify", shards[1]]) == 1  # non-zero on tampering

        assert main(["collect", *sum((["--from", s] for s in shards), []),
                     "--inbox", "inbox", "--backoff", "0"]) == 4  # degraded
        assert main(["verify", "inbox/" + shards[1]]) == 0  # zero after repair
        state = load_journal(tmp_path / "inbox" / shards[1])
        assert damaged_seed not in state.completed  # exactly the damaged rows

        inbox_shards = ["inbox/" + s for s in shards]
        assert main(["merge", *inbox_shards, "--out", "merged.jsonl",
                     "--no-table"]) == 4  # coverage hole reported
        assert main(base + ["--resume", "merged.jsonl", "--csv",
                            "merged.csv"]) == 0  # refilled
        assert main(base + ["--csv", "reference.csv"]) == 0
        assert (tmp_path / "merged.csv").read_bytes() == (
            tmp_path / "reference.csv"
        ).read_bytes()
        # The refilled merged journal now verifies end to end, and the
        # salvaged inbox (sealed, checksummed) passes the --verify gate —
        # its coverage hole is reported as degraded, not hidden.
        assert main(["verify", "merged.jsonl"]) == 0
        assert main(["merge", *inbox_shards, "--verify"]) == 4
