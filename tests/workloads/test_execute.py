"""The unified sweep entrypoint: policy validation, dispatch, shims.

``execute_sweep(spec, policy)`` is the single documented way to run a
sweep; these tests pin its contract — policy validation fails fast, the
serial and multiprocess paths return bit-identical rows, the legacy
entrypoints survive only as ``DeprecationWarning``-emitting shims.
"""

from functools import partial

import pytest

from repro.offline.cache import BracketCache
from repro.workloads.execute import ExecutionPolicy, execute_sweep
from repro.workloads.random_instances import random_instance
from repro.workloads.resilient import SweepExecutionError
from repro.workloads.sweep import SweepSpec


def _spec(base_seed: int = 5, **overrides) -> SweepSpec:
    defaults = dict(
        epsilons=[0.25, 0.5],
        machine_counts=[1],
        algorithms=["greedy"],
        workload=partial(random_instance, 6),
        repetitions=2,
        base_seed=base_seed,
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


def _broken_workload(m: int, eps: float, seed: int):
    """Module-level (picklable) workload that always raises."""
    raise ValueError("this workload is permanently broken")


class TestExecutionPolicyValidation:
    def test_defaults_are_serial(self):
        policy = ExecutionPolicy()
        assert not policy.needs_processes
        assert not policy.sharded
        assert policy.resolve_cache() is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"parallel": True},
            {"workers": 2},
            {"timeout": 5.0},
            {"journal": "x.jsonl"},
            {"journal": "x.jsonl", "resume": True},
            {"shards": 2, "shard_index": 0},
            {"interrupt_after": 1},
        ],
    )
    def test_process_fields_route_to_scheduler(self, kwargs):
        assert ExecutionPolicy(**kwargs).needs_processes

    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            ({"shards": 0, "shard_index": 0}, "shards"),
            ({"shards": 3}, "shard_index"),
            ({"shards": 3, "shard_index": 3}, "out of range"),
            ({"shards": 3, "shard_index": -1}, "out of range"),
            ({"resume": True}, "journal"),
            ({"retries": -1}, "retries"),
            ({"backoff": -0.1}, "backoff"),
            ({"workers": 0}, "workers"),
            ({"timeout": 0.0}, "timeout"),
            ({"cache": False, "cache_dir": "/tmp/x"}, "cache"),
        ],
    )
    def test_invalid_policies_fail_fast(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ExecutionPolicy(**kwargs)

    def test_resolve_cache(self, tmp_path):
        ready = BracketCache(tmp_path)
        assert ExecutionPolicy(cache=ready).resolve_cache() is ready
        assert ExecutionPolicy(cache=False).resolve_cache() is None
        implied = ExecutionPolicy(cache_dir=tmp_path).resolve_cache()
        assert isinstance(implied, BracketCache)
        explicit = ExecutionPolicy(cache=True, cache_dir=tmp_path).resolve_cache()
        assert isinstance(explicit, BracketCache)

    def test_with_shard(self):
        policy = ExecutionPolicy(shards=4, shard_index=0)
        assert policy.with_shard(3).shard_index == 3
        assert policy.with_shard(3).shards == 4
        with pytest.raises(ValueError, match="out of range"):
            policy.with_shard(4)


class TestExecuteSweep:
    def test_serial_and_scheduler_paths_bit_identical(self):
        spec = _spec()
        serial = execute_sweep(spec)
        scheduled = execute_sweep(spec, ExecutionPolicy(workers=2))
        assert serial.rows == scheduled.rows
        assert serial.manifest.cells_completed == serial.manifest.cells_total
        assert serial.complete and scheduled.complete

    def test_serial_reports_cache_stats(self, tmp_path):
        spec = _spec()
        result = execute_sweep(spec, ExecutionPolicy(cache=BracketCache(tmp_path)))
        assert result.cache_stats is not None
        assert result.cache_stats["misses"] == result.manifest.cells_total
        assert execute_sweep(spec).cache_stats is None

    def test_strict_raises_on_quarantine(self):
        spec = _spec(workload=_broken_workload)
        with pytest.raises(SweepExecutionError, match="permanently broken") as err:
            execute_sweep(
                spec,
                ExecutionPolicy(workers=2, retries=0, backoff=0.01, strict=True),
            )
        assert err.value.manifest.quarantined == err.value.manifest.cells_total

    def test_non_strict_degrades_gracefully(self):
        spec = _spec(workload=_broken_workload)
        result = execute_sweep(
            spec, ExecutionPolicy(workers=2, retries=0, backoff=0.01)
        )
        assert result.rows == []
        assert result.manifest.quarantined == result.manifest.cells_total


class TestDeprecatedShims:
    """The legacy entrypoints delegate to execute_sweep and warn."""

    def test_run_sweep_shim(self):
        from repro.workloads.sweep import run_sweep

        spec = _spec()
        with pytest.warns(DeprecationWarning, match="run_sweep is deprecated"):
            rows = run_sweep(spec)
        assert rows == execute_sweep(spec).rows

    def test_run_sweep_parallel_shim(self):
        from repro.workloads.parallel import run_sweep_parallel

        spec = _spec()
        with pytest.warns(DeprecationWarning, match="run_sweep_parallel"):
            rows = run_sweep_parallel(spec, max_workers=2)
        assert rows == execute_sweep(spec).rows

    def test_run_sweep_resilient_shim(self):
        from repro.workloads.resilient import run_sweep_resilient

        spec = _spec()
        with pytest.warns(DeprecationWarning, match="run_sweep_resilient"):
            result = run_sweep_resilient(spec, max_workers=2)
        assert result.complete
        assert result.rows == execute_sweep(spec).rows
