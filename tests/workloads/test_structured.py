"""Tests for the structured deterministic instance families."""

import pytest

from repro.core.params import threshold_parameters
from repro.workloads.structured import (
    adversarial_like_instance,
    alternating_instance,
    burst_instance,
    overload_instance,
    staircase_instance,
)


class TestBurst:
    def test_shape(self):
        inst = burst_instance(3, 4, machines=2, epsilon=0.2, seed=0)
        assert len(inst) == 12
        releases = set(inst.releases().tolist())
        assert len(releases) == 3  # one release time per burst

    def test_all_tight(self):
        inst = burst_instance(2, 3, machines=2, epsilon=0.3, seed=1)
        assert all(j.has_tight_slack(0.3) for j in inst)

    def test_burst_tags(self):
        inst = burst_instance(2, 2, machines=1, epsilon=0.5, seed=0)
        assert {j.tag("burst") for j in inst} == {0, 1}


class TestStaircase:
    def test_sizes_follow_f_ladder(self):
        eps, m = 0.2, 3
        params = threshold_parameters(eps, m)
        inst = staircase_instance(machines=m, epsilon=eps)
        sizes = sorted({round(j.processing, 6) for j in inst})
        expected = sorted({round(float(f - 1), 6) for f in params.f})
        assert sizes == expected

    def test_copies_per_step_default_is_m(self):
        inst = staircase_instance(machines=3, epsilon=0.2)
        params = threshold_parameters(0.2, 3)
        assert len(inst) == 3 * len(params.f)


class TestAlternating:
    def test_bait_and_whale_kinds(self):
        inst = alternating_instance(2, machines=2, epsilon=0.2)
        kinds = {j.tag("kind") for j in inst}
        assert kinds == {"bait", "whale"}
        assert len(inst) == 2 * 2 * 2

    def test_all_slack_valid(self):
        inst = alternating_instance(3, machines=2, epsilon=0.4)
        for j in inst:
            assert j.satisfies_slack(0.4)

    def test_whale_cannot_wait_behind_bait(self):
        inst = alternating_instance(1, machines=2, epsilon=0.1)
        baits = [j for j in inst if j.tag("kind") == "bait"]
        whales = [j for j in inst if j.tag("kind") == "whale"]
        for w in whales:
            assert w.latest_start < min(b.release + b.processing for b in baits)

    def test_delta_validation(self):
        import pytest

        with pytest.raises(ValueError):
            alternating_instance(1, machines=1, epsilon=0.5, delta=0.3)


class TestOverload:
    def test_demand_exceeds_capacity(self):
        inst = overload_instance(60, machines=2, epsilon=0.2, overload_factor=5.0, seed=0)
        capacity = 2 * inst.horizon
        assert inst.total_load > 1.5 * capacity


class TestAdversarialLike:
    def test_structure(self):
        eps, m = 0.2, 3
        inst = adversarial_like_instance(machines=m, epsilon=eps)
        params = threshold_parameters(eps, m)
        phase2 = [j for j in inst if j.tag("adversary_phase") == 2]
        phase3 = [j for j in inst if j.tag("adversary_phase") == 3]
        assert len(phase2) == 2 * m * m
        assert len(phase3) == m * (m - params.k + 1)

    def test_slack_valid(self):
        inst = adversarial_like_instance(machines=2, epsilon=0.3)
        for j in inst:
            assert j.satisfies_slack(0.3), j

    def test_runnable_by_algorithms(self):
        from repro.baselines.registry import run_algorithm

        inst = adversarial_like_instance(machines=2, epsilon=0.3)
        r_th = run_algorithm("threshold", inst)
        r_gr = run_algorithm("greedy", inst)
        assert r_th.accepted_load > 0 and r_gr.accepted_load > 0
