"""Sweep-level cross-backend equivalence and group-lease scheduling.

The kernel-backend seam must be invisible in sweep artefacts: rows, CSV
and journal records are bit-identical whichever backend executed the
cells, on both the serial path and the fault-tolerant scheduler (where a
non-scalar backend dispatches *group leases* of several cells per
worker).  A failed lease demotes its members to independent per-cell
attempts, so retry/quarantine semantics stay per-cell.
"""

import json
from functools import partial

import pytest

from repro.workloads.execute import ExecutionPolicy, execute_sweep
from repro.workloads.random_instances import random_instance
from repro.workloads.resilient import run_cell, run_cells
from repro.workloads.sweep import SweepSpec, rows_to_csv


def _spec(base_seed: int = 11, **overrides) -> SweepSpec:
    defaults = dict(
        epsilons=[0.2, 0.4],
        machine_counts=[2, 3],
        algorithms=["threshold", "greedy", "revocable-greedy"],
        workload=partial(random_instance, 12),
        repetitions=2,
        base_seed=base_seed,
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


def _rows_key(rows):
    return [r.as_dict() for r in rows]


class TestRunCells:
    def test_scalar_backend_equals_run_cell(self):
        spec = _spec()
        cells = list(spec.cells())
        grouped = run_cells(spec, cells, {}, backend="scalar")
        for (eps, m, rep), rows in zip(cells, grouped):
            assert _rows_key(rows) == _rows_key(run_cell(spec, eps, m, rep, {}))

    @pytest.mark.parametrize("backend", ["batch", "auto"])
    def test_batched_backends_bit_identical(self, backend):
        spec = _spec()
        cells = list(spec.cells())
        scalar = run_cells(spec, cells, {}, backend="scalar")
        other = run_cells(spec, cells, {}, backend=backend)
        assert _rows_key(sum(scalar, [])) == _rows_key(sum(other, []))

    def test_algorithm_kwargs_respected(self):
        spec = _spec(algorithms=["revocable-greedy"])
        cells = list(spec.cells())[:2]
        kwargs = {"revocable-greedy": {"phi": 2.0}}
        scalar = run_cells(spec, cells, kwargs, backend="scalar")
        batch = run_cells(spec, cells, kwargs, backend="batch")
        assert _rows_key(sum(scalar, [])) == _rows_key(sum(batch, []))

    def test_unsupported_algorithm_falls_back_inside_group(self):
        spec = _spec(algorithms=["threshold", "dasgupta-palis"])
        cells = list(spec.cells())[:2]
        scalar = run_cells(spec, cells, {}, backend="scalar")
        auto = run_cells(spec, cells, {}, backend="auto")
        assert _rows_key(sum(scalar, [])) == _rows_key(sum(auto, []))


class TestChunkingEdges:
    """The serial path chunks cells by 32; the boundaries must be exact.

    ``n % 32`` of 0 (whole chunks only), 1 (a final singleton chunk) and
    31 (one chunk one short) plus the empty call — the off-by-one shapes
    a round-sized grid never exercises.
    """

    @staticmethod
    def _edge_spec(n_cells: int) -> SweepSpec:
        return _spec(
            epsilons=[0.3],
            machine_counts=[2],
            algorithms=["greedy"],
            workload=partial(random_instance, 6),
            repetitions=n_cells,
        )

    @pytest.mark.parametrize("n_cells", [32, 33, 31])
    @pytest.mark.parametrize("backend", ["scalar", "batch"])
    def test_chunk_boundaries_cover_every_cell(self, n_cells, backend):
        spec = self._edge_spec(n_cells)
        cells = list(spec.cells())
        assert len(cells) == n_cells
        result = execute_sweep(spec, ExecutionPolicy(backend=backend))
        expected = [
            row
            for eps, m, rep in cells
            for row in run_cell(spec, eps, m, rep, {})
        ]
        assert _rows_key(result.rows) == _rows_key(expected)

    @pytest.mark.parametrize("backend", ["scalar", "batch", "auto"])
    def test_empty_cell_list(self, backend):
        assert run_cells(_spec(), [], {}, backend=backend) == []


class TestExecuteSweepBackends:
    @pytest.mark.parametrize("backend", ["scalar", "batch", "auto"])
    def test_serial_rows_and_csv_identical(self, backend):
        reference = execute_sweep(_spec(), ExecutionPolicy(backend="scalar"))
        result = execute_sweep(_spec(), ExecutionPolicy(backend=backend))
        assert _rows_key(result.rows) == _rows_key(reference.rows)
        assert rows_to_csv(result.rows) == rows_to_csv(reference.rows)

    def test_scheduler_group_leases_bit_identical(self):
        spec = _spec()
        serial = execute_sweep(spec, ExecutionPolicy(backend="scalar"))
        grouped = execute_sweep(
            spec, ExecutionPolicy(parallel=True, workers=2, backend="batch")
        )
        assert _rows_key(grouped.rows) == _rows_key(serial.rows)
        assert grouped.manifest.cells_completed == grouped.manifest.cells_total
        assert not grouped.manifest.failures

    def test_journal_rows_identical_across_backends(self, tmp_path):
        spec = _spec()
        paths = {}
        for backend in ("scalar", "batch"):
            path = tmp_path / f"{backend}.jsonl"
            result = execute_sweep(
                spec,
                ExecutionPolicy(parallel=True, journal=str(path), backend=backend),
            )
            assert not result.manifest.failures
            paths[backend] = path

        def cell_records(path):
            records = {}
            for line in path.read_text().splitlines():
                rec = json.loads(line)
                if rec.get("kind") == "cell":
                    records[rec["seed"]] = rec["rows"]
            return records

        scalar_cells = cell_records(paths["scalar"])
        batch_cells = cell_records(paths["batch"])
        assert scalar_cells == batch_cells
        assert len(scalar_cells) == 8

    def test_resume_after_group_run_is_noop(self, tmp_path):
        spec = _spec()
        path = tmp_path / "sweep.jsonl"
        first = execute_sweep(
            spec, ExecutionPolicy(parallel=True, journal=str(path), backend="auto")
        )
        resumed = execute_sweep(
            spec,
            ExecutionPolicy(
                parallel=True, journal=str(path), resume=True, backend="auto"
            ),
        )
        assert _rows_key(resumed.rows) == _rows_key(first.rows)
        assert resumed.manifest.cells_replayed == resumed.manifest.cells_total


def _flaky_group_workload(m: int, eps: float, seed: int):
    """Fails for one particular cell seed; fine everywhere else."""
    if seed % 4 == 1:
        raise ValueError("cell-specific fault")
    return random_instance(8, m, eps, seed=seed)


class TestGroupLeaseDemotion:
    def test_failed_lease_demotes_to_per_cell_attempts(self):
        spec = _spec(workload=_flaky_group_workload, algorithms=["greedy"])
        result = execute_sweep(
            spec,
            ExecutionPolicy(
                parallel=True, workers=2, retries=1, backoff=0.01, backend="batch"
            ),
        )
        manifest = result.manifest
        seeds = [spec.cell_seed(*c) for c in spec.cells()]
        broken = sum(1 for s in seeds if s % 4 == 1)
        good = len(seeds) - broken
        assert manifest.cells_completed == good
        assert manifest.quarantined == broken
        # Good cells that rode a failed lease recovered via demotion.
        if broken and good:
            assert manifest.recovered > 0
        for failure in manifest.failures:
            assert any("group-lease" in h for h in failure.history)
            assert "cell-specific fault" in failure.detail
        # Demoted rows are still bit-identical to a scalar run of the
        # surviving cells.
        scalar = execute_sweep(
            spec,
            ExecutionPolicy(
                parallel=True, workers=2, retries=1, backoff=0.01, backend="scalar"
            ),
        )
        assert _rows_key(result.rows) == _rows_key(scalar.rows)

    def test_chaos_plan_disables_grouping(self):
        from repro.testing.chaos import ChaosPlan

        spec = _spec(algorithms=["greedy"])
        result = execute_sweep(
            spec,
            ExecutionPolicy(
                parallel=True,
                workers=2,
                retries=2,
                backoff=0.01,
                backend="batch",
                chaos=ChaosPlan(),
            ),
        )
        assert not result.manifest.failures
        reference = execute_sweep(spec, ExecutionPolicy(backend="scalar"))
        assert _rows_key(result.rows) == _rows_key(reference.rows)
