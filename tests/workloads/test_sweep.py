"""Tests for the sweep harness."""

import pytest

from repro.workloads.execute import execute_sweep
from repro.workloads.random_instances import random_instance
from repro.workloads.sweep import SweepSpec, aggregate_rows


def run_sweep(spec):
    """Serial rows via the unified (non-deprecated) entrypoint."""
    return execute_sweep(spec).rows


def _spec(**overrides):
    defaults = dict(
        epsilons=[0.2, 0.5],
        machine_counts=[1, 2],
        algorithms=["threshold", "greedy"],
        workload=lambda m, e, s: random_instance(10, m, e, seed=s),
        repetitions=2,
        base_seed=1,
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestSpec:
    def test_cells_cover_grid(self):
        cells = list(_spec().cells())
        assert len(cells) == 2 * 2 * 2

    def test_cell_seed_deterministic(self):
        spec = _spec()
        assert spec.cell_seed(0.2, 1, 0) == spec.cell_seed(0.2, 1, 0)

    def test_cell_seed_varies(self):
        spec = _spec()
        seeds = {
            spec.cell_seed(e, m, r)
            for e, m, r in spec.cells()
        }
        assert len(seeds) == 8

    def test_cell_seed_distinguishes_dyadic_epsilons(self):
        # Regression: float hashes of 0.5/0.25/0.125 are high powers of
        # two; a 32-bit fold collapsed them all to one seed, conflating
        # journal keys and reusing RNG streams across grid columns.
        spec = _spec(epsilons=[0.125, 0.25, 0.5])
        seeds = {spec.cell_seed(e, m, r) for e, m, r in spec.cells()}
        assert len(seeds) == 3 * 2 * 2


class TestRunSweep:
    def test_row_count(self):
        rows = run_sweep(_spec())
        assert len(rows) == 8 * 2  # cells x algorithms

    def test_rows_carry_bracket(self):
        rows = run_sweep(_spec())
        for row in rows:
            assert row.opt_lower <= row.opt_upper + 1e-9
            assert row.ratio_lower <= row.ratio_upper + 1e-9

    def test_same_cell_shares_bracket_across_algorithms(self):
        rows = run_sweep(_spec())
        by_cell = {}
        for row in rows:
            by_cell.setdefault((row.epsilon, row.machines, row.repetition), []).append(row)
        for group in by_cell.values():
            uppers = {row.opt_upper for row in group}
            assert len(uppers) == 1

    def test_guarantee_column(self):
        rows = run_sweep(_spec())
        for row in rows:
            assert row.guarantee is not None and row.guarantee > 1

    def test_as_dict_round(self):
        row = run_sweep(_spec())[0]
        d = row.as_dict()
        assert set(d) >= {"epsilon", "machines", "algorithm", "ratio_upper"}

    def test_deterministic_rerun(self):
        r1 = run_sweep(_spec())
        r2 = run_sweep(_spec())
        assert [r.accepted_load for r in r1] == [r.accepted_load for r in r2]


class TestAggregate:
    def test_aggregation_shape(self):
        rows = run_sweep(_spec())
        agg = aggregate_rows(rows)
        assert len(agg) == 8  # (eps, m, algorithm) combos
        for entry in agg:
            assert entry["repetitions"] == 2

    def test_mean_between_min_max(self):
        rows = run_sweep(_spec())
        agg = aggregate_rows(rows)
        for entry in agg:
            assert entry["mean_ratio_upper"] <= entry["max_ratio_upper"] + 1e-12
