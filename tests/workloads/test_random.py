"""Tests for random instance generators."""

import numpy as np
import pytest

from repro.workloads.random_instances import (
    ProcessingDistribution,
    poisson_instance,
    random_instance,
    tight_slack_instance,
)


class TestRandomInstance:
    def test_size_and_params(self):
        inst = random_instance(50, 3, 0.2, seed=0)
        assert len(inst) == 50 and inst.machines == 3 and inst.epsilon == 0.2

    def test_validates_slack(self):
        inst = random_instance(100, 2, 0.3, seed=1)
        for job in inst:
            assert job.satisfies_slack(0.3)

    def test_deterministic_by_seed(self):
        a = random_instance(20, 2, 0.1, seed=7)
        b = random_instance(20, 2, 0.1, seed=7)
        assert a.to_json() == b.to_json()

    def test_seeds_differ(self):
        a = random_instance(20, 2, 0.1, seed=7)
        b = random_instance(20, 2, 0.1, seed=8)
        assert a.to_json() != b.to_json()

    def test_releases_nondecreasing(self):
        inst = random_instance(80, 2, 0.1, seed=3)
        r = inst.releases()
        assert np.all(np.diff(r) >= 0)

    def test_tight_fraction_one_pins_all(self):
        inst = random_instance(40, 2, 0.25, seed=2, tight_fraction=1.0)
        for job in inst:
            assert job.has_tight_slack(0.25)

    def test_tight_fraction_zero_leaves_room(self):
        inst = random_instance(40, 2, 0.25, seed=2, tight_fraction=0.0)
        slacks = [job.slack() for job in inst]
        assert max(slacks) > 0.25 + 1e-6

    @pytest.mark.parametrize("dist", list(ProcessingDistribution))
    def test_all_distributions_produce_positive_times(self, dist):
        inst = random_instance(60, 2, 0.2, seed=4, distribution=dist)
        assert np.all(inst.processings() > 0)

    def test_distribution_by_string(self):
        inst = random_instance(10, 1, 0.5, seed=0, distribution="pareto")
        assert "pareto" in inst.name

    def test_bimodal_has_two_modes(self):
        inst = random_instance(300, 2, 0.2, seed=5, distribution="bimodal")
        p = inst.processings()
        assert (p < 0.5).any() and (p > 1.5).any()


class TestVariants:
    def test_tight_slack_instance(self):
        inst = tight_slack_instance(30, 2, 0.15, seed=6)
        assert all(j.has_tight_slack(0.15) for j in inst)
        assert inst.name.startswith("tight")

    def test_poisson_utilization_scales_arrivals(self):
        lo = poisson_instance(300, 2, 0.2, utilization=0.5, seed=9)
        hi = poisson_instance(300, 2, 0.2, utilization=4.0, seed=9)
        # Higher utilization = faster arrivals = shorter horizon.
        assert hi.horizon < lo.horizon

    def test_poisson_name_records_utilization(self):
        inst = poisson_instance(10, 1, 0.5, utilization=2.0, seed=0)
        assert "u=2" in inst.name
