"""Tests for the parallel sweep executor.

This file exercises the deprecated ``run_sweep_parallel``/``run_sweep``
shims on purpose (they must keep working until removed), so the
module-level mark exempts it from the suite-wide
``-W error::DeprecationWarning`` gate.
"""

from functools import partial

import pytest

from repro.workloads.parallel import run_sweep_parallel
from repro.workloads.random_instances import random_instance
from repro.workloads.sweep import SweepSpec, run_sweep

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _workload(m: int, eps: float, seed: int, n: int = 10):
    return random_instance(n, m, eps, seed=seed)


def _spec() -> SweepSpec:
    return SweepSpec(
        epsilons=[0.2, 0.5],
        machine_counts=[1, 2],
        algorithms=["threshold", "greedy"],
        workload=partial(_workload, n=10),
        repetitions=2,
        base_seed=3,
    )


class TestParallelSweep:
    def test_matches_serial_exactly(self):
        spec = _spec()
        serial = run_sweep(spec)
        parallel = run_sweep_parallel(spec, max_workers=2)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a == b

    def test_worker_count_does_not_change_results(self):
        spec = _spec()
        one = run_sweep_parallel(spec, max_workers=1)
        two = run_sweep_parallel(spec, max_workers=2)
        assert one == two

    def test_lambda_workload_rejected(self):
        spec = SweepSpec(
            epsilons=[0.5],
            machine_counts=[1],
            algorithms=["greedy"],
            workload=lambda m, e, s: random_instance(5, m, e, seed=s),
            repetitions=1,
        )
        with pytest.raises(TypeError, match="picklable"):
            run_sweep_parallel(spec)

    def test_unpicklable_algorithm_kwargs_rejected(self):
        # Used to fail deep inside the pool with an opaque error; now the
        # kwargs values are pickle-checked up front like the workload.
        spec = _spec()
        with pytest.raises(TypeError, match=r"algorithm_kwargs\['greedy'\]"):
            run_sweep_parallel(
                spec, algorithm_kwargs={"greedy": {"hook": lambda: None}}
            )
