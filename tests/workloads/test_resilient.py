"""Chaos-driven validation of the fault-tolerant sweep runner.

The acceptance bar (ISSUE 2): with injected crash + hang + transient
error + corrupt faults on >= 20% of cells, the resilient runner must
finish the sweep, quarantine *only* the truly-poisoned (persistent)
cells, report them in the ``FailureManifest``, and a resume after a
simulated hard kill must yield rows bit-identical to a clean serial
:func:`run_sweep`.

ISSUE 7 adds: bounded SIGTERM->SIGKILL teardown (no zombie children
survive a SIGINT mid-group-lease) and a hypothesis property over the
elastic :class:`~repro.workloads.elastic.CellQueue` — any interleaving
of lease expiry / re-dispatch / duplicate completion yields the same
final journal rows.
"""

import json
import multiprocessing as mp
import os
import signal
import subprocess
import sys
import textwrap
import time
from functools import lru_cache, partial

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.testing.chaos import ChaosPlan
from repro.workloads.elastic import CellQueue, SpeculationMismatch
from repro.workloads.journal import SweepJournal, load_journal
from repro.workloads.random_instances import random_instance
from repro.workloads.execute import ExecutionPolicy, execute_sweep
from repro.workloads.resilient import (
    SweepExecutionError,
    SweepInterrupted,
    _terminate,
    _terminate_all,
    run_cell,
    validate_cell_rows,
)
from repro.workloads.sweep import SweepSpec


def run_sweep(spec):
    """Serial reference rows via the unified entrypoint."""
    return execute_sweep(spec).rows


def run_sweep_resilient(spec, **kwargs):
    """The fault-tolerant scheduler under its current execute_sweep surface.

    Keeps the historical keyword names these tests were written with
    (max_workers/max_retries/journal_path) while exercising the
    non-deprecated ExecutionPolicy path.
    """
    policy = ExecutionPolicy(
        parallel=True,
        workers=kwargs.pop("max_workers", None),
        retries=kwargs.pop("max_retries", 2),
        journal=kwargs.pop("journal_path", None),
        **kwargs,
    )
    return execute_sweep(spec, policy)


def _chaos_spec() -> SweepSpec:
    return SweepSpec(
        epsilons=[0.2, 0.5],
        machine_counts=[1, 2],
        algorithms=["threshold", "greedy"],
        workload=partial(random_instance, 8),
        repetitions=3,
        base_seed=13,
    )


#: Deterministic plan: on the grid above it faults 5/12 cells (>= 20%)
#: covering all four kinds; persistent = {corrupt, corrupt, error},
#: transient = {crash, hang} (the hang is transient, so the slow timeout
#: path runs exactly once).
CHAOS_PLAN = ChaosPlan(
    crash_rate=0.12,
    hang_rate=0.1,
    error_rate=0.12,
    corrupt_rate=0.12,
    persistent_rate=0.45,
    hang_seconds=30.0,
    seed=32,
)


def _small_spec(base_seed: int = 5) -> SweepSpec:
    return SweepSpec(
        epsilons=[0.25, 0.5],
        machine_counts=[1],
        algorithms=["greedy"],
        workload=partial(random_instance, 6),
        repetitions=2,
        base_seed=base_seed,
    )


@lru_cache(maxsize=None)
def _serial_rows(base_seed: int) -> tuple:
    return tuple(run_sweep(_small_spec(base_seed)))


def _hanging_workload(m: int, eps: float, seed: int):
    """Module-level (picklable) workload that hangs on two machines."""
    if m == 2:
        time.sleep(30.0)
    return random_instance(5, m, eps, seed=seed)


def _broken_workload(m: int, eps: float, seed: int):
    """Module-level workload that always raises (a poison cell)."""
    raise ValueError("this workload is permanently broken")


class TestCleanRuns:
    def test_matches_serial_without_faults(self):
        spec = _chaos_spec()
        result = run_sweep_resilient(spec, max_workers=4)
        assert result.complete
        assert result.rows == run_sweep(spec)
        assert result.manifest.cells_completed == result.manifest.cells_total

    def test_journal_written_and_replayed(self, tmp_path):
        spec = _small_spec()
        path = tmp_path / "sweep.jsonl"
        first = run_sweep_resilient(spec, journal_path=path, max_workers=2)
        assert first.complete and first.journal_path == str(path)
        # A full resume re-executes nothing: every cell replays from disk.
        again = run_sweep_resilient(spec, journal_path=path, resume=True)
        assert again.rows == first.rows == list(_serial_rows(5))
        assert again.manifest.cells_replayed == again.manifest.cells_total
        assert again.manifest.cells_completed == 0

    def test_resume_without_journal_path_rejected(self):
        with pytest.raises(ValueError, match="journal"):
            run_sweep_resilient(_small_spec(), resume=True)


class TestChaosAcceptance:
    """The headline chaos scenario from the issue's acceptance criteria."""

    def test_quarantines_only_poisoned_cells(self):
        spec = _chaos_spec()
        cells = list(spec.cells())
        seeds = [spec.cell_seed(*c) for c in cells]
        faults = CHAOS_PLAN.faulted_cells(seeds)

        # Premise: >= 20% of cells faulted, all injectable kinds present.
        assert len(faults) / len(cells) >= 0.20
        kinds = {kind for kind, _ in faults.values()}
        assert {"crash", "hang", "error", "corrupt"} <= kinds
        poisoned = {seed for seed, (_, persistent) in faults.items() if persistent}
        transient = set(faults) - poisoned
        assert poisoned and transient

        result = run_sweep_resilient(
            spec,
            chaos=CHAOS_PLAN,
            timeout=1.0,
            max_retries=1,
            backoff=0.02,
            max_workers=4,
        )
        manifest = result.manifest
        if os.environ.get("REPRO_CHAOS_MANIFEST"):
            with open(os.environ["REPRO_CHAOS_MANIFEST"], "w") as fh:
                json.dump(manifest.as_dict(), fh, indent=2)

        # Quarantine exactly the persistent cells, nothing else.
        assert {f.seed for f in manifest.failures} == poisoned
        assert manifest.recovered == len(transient)
        assert manifest.cells_completed == len(cells) - len(poisoned)

        # Failures are fully attributed: kind, attempts, per-attempt history.
        by_seed = {f.seed: f for f in manifest.failures}
        for seed, (kind, _) in faults.items():
            if seed in poisoned:
                failure = by_seed[seed]
                expected = "timeout" if kind == "hang" else kind
                assert failure.kind == expected
                assert failure.attempts == 2
                assert len(failure.history) == 2

        # Graceful degradation: every surviving row is bit-identical to
        # the serial run's row for that cell.
        serial = run_sweep(spec)
        surviving = [
            row
            for cell, chunk in zip(
                cells, [serial[i : i + 2] for i in range(0, len(serial), 2)]
            )
            if spec.cell_seed(*cell) not in poisoned
            for row in chunk
        ]
        assert result.rows == surviving

    def test_resume_after_hard_kill_bit_identical_to_serial(self, tmp_path):
        spec = _chaos_spec()
        path = tmp_path / "killed.jsonl"
        with pytest.raises(SweepInterrupted) as excinfo:
            run_sweep_resilient(
                spec, journal_path=path, interrupt_after=4, max_workers=2
            )
        partial_result = excinfo.value.result
        assert 0 < len(partial_result.rows) < len(run_sweep(spec))

        resumed = run_sweep_resilient(spec, journal_path=path, resume=True, max_workers=2)
        assert resumed.complete
        assert resumed.rows == run_sweep(spec)
        assert resumed.manifest.cells_replayed >= 4

    def test_resume_tolerates_truncated_tail(self, tmp_path):
        spec = _small_spec()
        path = tmp_path / "sweep.jsonl"
        with pytest.raises(SweepInterrupted):
            run_sweep_resilient(spec, journal_path=path, interrupt_after=2, max_workers=1)
        with open(path, "a") as fh:
            fh.write('{"kind": "cell", "seed": 1, "rows": [[0.25, 1')  # hard kill mid-write
        resumed = run_sweep_resilient(spec, journal_path=path, resume=True)
        assert resumed.rows == list(_serial_rows(5))

    def test_double_hard_kill_and_resume(self, tmp_path):
        # kill -> resume -> kill -> resume: each kill leaves a partial
        # trailing line, and each resume must still converge on a journal
        # that loads cleanly and rows bit-identical to the serial run.
        spec = _chaos_spec()  # 12 cells
        path = tmp_path / "killed-twice.jsonl"
        with pytest.raises(SweepInterrupted):
            run_sweep_resilient(spec, journal_path=path, interrupt_after=3, max_workers=1)
        with open(path, "a") as fh:
            fh.write('{"kind": "cell", "seed": 7, "rows": [[0.2')
        with pytest.raises(SweepInterrupted):
            run_sweep_resilient(
                spec, journal_path=path, resume=True, interrupt_after=3, max_workers=1
            )
        with open(path, "a") as fh:
            fh.write('{"kind": "ce')
        resumed = run_sweep_resilient(spec, journal_path=path, resume=True, max_workers=2)
        assert resumed.complete
        assert resumed.rows == run_sweep(spec)
        assert resumed.manifest.cells_replayed >= 6
        state = load_journal(path)
        assert not state.truncated_tail
        assert len(state.completed) == 12

    def test_journal_with_quarantined_cells_stays_loadable(self, tmp_path):
        # Quarantine writes a failure record; the journal must still load
        # (and resume) afterwards, reporting the failure for observability.
        spec = SweepSpec(
            epsilons=[0.3],
            machine_counts=[1],
            algorithms=["greedy"],
            workload=_broken_workload,
            repetitions=1,
        )
        path = tmp_path / "poison.jsonl"
        result = run_sweep_resilient(
            spec, journal_path=path, max_retries=0, max_workers=1
        )
        assert result.manifest.quarantined == 1
        state = load_journal(path)
        assert len(state.failures) == 1
        assert state.failures[0]["kind"] == "error"
        resumed = run_sweep_resilient(
            spec, journal_path=path, resume=True, max_retries=0, max_workers=1
        )
        assert resumed.manifest.quarantined == 1


class TestFailureModes:
    def test_hung_cells_time_out_and_quarantine(self):
        spec = SweepSpec(
            epsilons=[0.3],
            machine_counts=[1, 2],
            algorithms=["greedy"],
            workload=_hanging_workload,
            repetitions=1,
            base_seed=2,
        )
        start = time.monotonic()
        result = run_sweep_resilient(spec, timeout=0.5, max_retries=0, max_workers=2)
        assert time.monotonic() - start < 15.0  # terminated, not waited on
        assert [f.kind for f in result.manifest.failures] == ["timeout"]
        assert result.manifest.failures[0].machines == 2
        # The healthy machine count still produced its row.
        assert [r.machines for r in result.rows] == [1]

    def test_poison_cell_exhausts_retries(self):
        spec = SweepSpec(
            epsilons=[0.3],
            machine_counts=[1],
            algorithms=["greedy"],
            workload=_broken_workload,
            repetitions=1,
        )
        result = run_sweep_resilient(spec, max_retries=2, backoff=0.01)
        assert result.rows == []
        (failure,) = result.manifest.failures
        assert failure.kind == "error"
        assert failure.attempts == 3
        assert "permanently broken" in failure.detail
        assert result.manifest.retries == 2

    def test_corrupt_rows_detected_by_validator(self):
        spec = _small_spec()
        eps, m, rep = next(iter(spec.cells()))
        rows = run_sweep(spec)[:1]
        assert validate_cell_rows(spec, eps, m, rep, rows) is None
        mangled = ChaosPlan().corrupt_rows(rows)
        problem = validate_cell_rows(spec, eps, m, rep, mangled)
        assert problem is not None and "accepted_load" in problem
        assert validate_cell_rows(spec, eps, m, rep, "rows") is not None
        assert validate_cell_rows(spec, eps, m, rep, []) is not None

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_parallel_wrapper_raises_on_failure(self):
        # Exercises the deprecated strict wrapper on purpose.
        spec = SweepSpec(
            epsilons=[0.3],
            machine_counts=[1],
            algorithms=["greedy"],
            workload=_broken_workload,
            repetitions=1,
        )
        from repro.workloads.parallel import run_sweep_parallel

        with pytest.raises(SweepExecutionError, match="permanently broken") as excinfo:
            run_sweep_parallel(spec)
        assert excinfo.value.manifest.quarantined == 1


def _stubborn_child() -> None:
    """Module-level (picklable) child that ignores SIGTERM and lingers."""
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    time.sleep(60.0)


class TestTerminationEscalation:
    """Bounded SIGTERM -> SIGKILL teardown; nothing outlives the scheduler."""

    def test_sigterm_ignoring_child_is_killed(self):
        ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
        child = ctx.Process(target=_stubborn_child, daemon=True)
        child.start()
        time.sleep(0.2)  # let the child install its SIGTERM handler
        start = time.monotonic()
        _terminate(child, grace=0.3)
        assert time.monotonic() - start < 5.0  # bounded, not a 60s wait
        assert not child.is_alive()
        assert child.exitcode == -signal.SIGKILL  # escalation actually fired

    def test_terminate_all_shares_one_grace_period(self):
        ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
        children = [ctx.Process(target=_stubborn_child, daemon=True) for _ in range(3)]
        for child in children:
            child.start()
        time.sleep(0.3)
        start = time.monotonic()
        _terminate_all(children, grace=0.3)
        # Serial escalation would take >= 3 * grace just for the SIGTERM
        # waits; the shared deadline keeps teardown near one grace period.
        assert time.monotonic() - start < 5.0
        for child in children:
            assert not child.is_alive()
            assert child.exitcode == -signal.SIGKILL

    def test_terminate_already_dead_child_is_reaped(self):
        ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
        child = ctx.Process(target=time.sleep, args=(0.0,), daemon=True)
        child.start()
        child.join()
        _terminate(child)  # must not raise, must leave it reaped
        assert child.exitcode == 0

    def test_no_zombies_survive_sigint_mid_group_lease(self, tmp_path):
        """Real SIGINT during batch group leases: every worker PID dies.

        The sweep subprocess records each worker's PID (with SIGTERM
        ignored, so only the SIGKILL escalation can reap it), takes a
        SIGINT mid-lease, and then proves from inside the interrupted
        process that no recorded worker survived — ``os.kill(pid, 0)``
        must fail for all of them (a zombie would still accept signal 0).
        """
        pid_dir = tmp_path / "pids"
        pid_dir.mkdir()
        script = textwrap.dedent(
            """
            import os, signal, sys, time
            from repro.workloads.execute import ExecutionPolicy, execute_sweep
            from repro.workloads.resilient import SweepInterrupted
            from repro.workloads.sweep import SweepSpec
            from repro.workloads.random_instances import random_instance

            PID_DIR = os.environ["PID_DIR"]

            def workload(m, eps, seed):
                signal.signal(signal.SIGTERM, signal.SIG_IGN)
                pid = os.getpid()
                with open(os.path.join(PID_DIR, str(pid)), "w") as fh:
                    fh.write(str(pid))
                time.sleep(0.5)  # keep the group lease mid-flight
                return random_instance(6, m, eps, seed=seed)

            spec = SweepSpec(
                epsilons=[0.2, 0.4],
                machine_counts=[1, 2],
                algorithms=["greedy"],
                workload=workload,
                repetitions=4,
            )
            policy = ExecutionPolicy(workers=2, backend="batch")
            try:
                execute_sweep(spec, policy)
            except SweepInterrupted:
                survivors = []
                for name in os.listdir(PID_DIR):
                    try:
                        os.kill(int(name), 0)
                        survivors.append(name)
                    except ProcessLookupError:
                        pass
                if survivors:
                    print(f"ZOMBIES: {survivors}", file=sys.stderr)
                    sys.exit(70)
                sys.exit(42)
            sys.exit(1)  # finished before the SIGINT landed — retune sleeps
            """
        )
        env = dict(os.environ)
        env["PID_DIR"] = str(pid_dir)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), os.path.abspath("src")) if p
        )
        # The workload is a local closure on purpose: it only has to be
        # picklable *inside* the subprocess, where it is module-level.
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            env=env,
            stderr=subprocess.PIPE,
            start_new_session=True,  # isolate our SIGINT from the test run
        )
        try:
            deadline = time.monotonic() + 30.0
            while not any(pid_dir.iterdir()):
                assert time.monotonic() < deadline, "no worker ever started"
                assert proc.poll() is None, "sweep exited before any worker ran"
                time.sleep(0.02)
            time.sleep(0.1)  # ensure the lease is genuinely mid-flight
            proc.send_signal(signal.SIGINT)
            _, stderr = proc.communicate(timeout=30.0)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode == 42, stderr.decode()


def _interleaved_queue_run(
    spec, journal_path, cells, rows_by_seed, decisions, n_workers
) -> dict:
    """Drive a :class:`CellQueue` through one adversarial interleaving.

    ``decisions`` is an infinite-ish iterator of small ints from
    hypothesis; each step picks a worker and an action (grant /
    heartbeat / expire-and-redispatch / fail-release / complete /
    duplicate-complete).  Wins are journaled exactly as the elastic
    scheduler would.  Returns the journal's completed map.
    """
    queue = CellQueue(
        cells, retries=3, lease_timeout=1.0, timeout=None, speculate=True
    )
    journal = SweepJournal.create(journal_path, spec)
    clock = 0.0
    idle = set(range(n_workers))
    steps = iter(decisions)

    def pick(options):
        return options[next(steps) % len(options)]

    try:
        for _ in range(500):
            if queue.done:
                break
            clock += 0.1
            busy = [w for w in queue.leases]
            action = next(steps) % 6
            if action in (0, 1) or not busy:  # grant (weighted: most common)
                if not idle:
                    continue
                worker = pick(sorted(idle))
                lease = queue.next_lease(worker, clock)
                if lease is not None:
                    idle.discard(worker)
            elif action == 2:  # heartbeat
                queue.heartbeat(pick(busy), clock)
            elif action == 3:  # lease expiry -> re-dispatch (worker charged)
                worker = pick(busy)
                queue.release(worker, "expired: missed heartbeats", charge_cell=False)
                idle.add(worker)
            elif action == 4:  # transient cell failure -> retry budget
                worker = pick(busy)
                # Stay within the retry budget: the property under test is
                # that *recoverable* interleavings converge, so an injected
                # failure that would quarantine the cell degrades to a
                # charge-free expiry instead.
                charge = queue.leases[worker].attempt <= queue.retries
                detail = "error: injected" if charge else "expired: injected"
                queue.release(worker, detail, charge_cell=charge)
                idle.add(worker)
            else:  # complete (possibly as a duplicate of a finished cell)
                worker = pick(busy)
                seed = queue.leases[worker].seed
                outcome, lease = queue.complete(worker, seed, rows_by_seed[seed])
                idle.add(worker)
                if outcome == "win":
                    journal.record_cell(
                        seed,
                        lease.eps,
                        lease.m,
                        lease.rep,
                        rows_by_seed[seed],
                        provenance={"worker": worker, "attempt": lease.attempt},
                    )
        else:
            pytest.fail("interleaving did not converge in 500 steps")
        journal.record_seal()
    finally:
        journal.close()
    return load_journal(journal_path).completed


class TestLeaseInterleavingProperty:
    """Any interleaving of expiry/re-dispatch/duplicates -> same journal."""

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(decisions=st.lists(st.integers(0, 5), min_size=60, max_size=400))
    def test_interleavings_converge_to_identical_journal_rows(
        self, tmp_path, decisions
    ):
        spec = _small_spec(9)
        cells = [
            (eps, m, rep, spec.cell_seed(eps, m, rep)) for eps, m, rep in spec.cells()
        ]
        rows_by_seed = {
            seed: run_cell(spec, eps, m, rep, {}) for eps, m, rep, seed in cells
        }
        path = tmp_path / f"interleave-{time.monotonic_ns()}.jsonl"
        # Pad with a "complete" drain tail so every prefix hypothesis chooses
        # is extended to a finished sweep: with leases outstanding the tail
        # completes one per step, otherwise it grants — never a stall.
        completed = _interleaved_queue_run(
            spec, path, cells, rows_by_seed, decisions + [5] * 3000, n_workers=3
        )
        # However the leases bounced around, the journal holds exactly the
        # canonical rows for every cell — bit-identical to a serial run.
        assert completed == rows_by_seed

    def test_duplicate_completion_must_be_bit_identical(self):
        spec = _small_spec(9)
        cells = [
            (eps, m, rep, spec.cell_seed(eps, m, rep)) for eps, m, rep in spec.cells()
        ]
        queue = CellQueue(cells, lease_timeout=1.0)
        first = queue.next_lease(0, 0.0)
        rows = run_cell(spec, first.eps, first.m, first.rep, {})
        assert queue.complete(0, first.seed, rows)[0] == "win"
        # A second (stale/speculative) copy with identical rows is benign …
        queue.pending.clear()
        queue.leases[1] = type(first)(
            **{**first.__dict__, "worker": 1}
        )
        assert queue.complete(1, first.seed, list(rows))[0] == "duplicate"
        # … but a diverging copy is a hard nondeterminism error.
        queue.leases[2] = type(first)(**{**first.__dict__, "worker": 2})
        mangled = ChaosPlan().corrupt_rows(rows)
        with pytest.raises(SpeculationMismatch):
            queue.complete(2, first.seed, mangled)


class TestInterruptedResumeProperty:
    """Hypothesis: interrupt anywhere, resume, get the serial rows exactly."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(base_seed=st.sampled_from([5, 6, 7]), kill_after=st.integers(1, 3))
    def test_interrupt_resume_bit_identical(self, tmp_path, base_seed, kill_after):
        spec = _small_spec(base_seed)
        path = tmp_path / f"journal-{base_seed}-{kill_after}-{time.monotonic_ns()}.jsonl"
        with pytest.raises(SweepInterrupted) as excinfo:
            run_sweep_resilient(
                spec, journal_path=path, interrupt_after=kill_after, max_workers=1
            )
        # The journal holds exactly what the interrupt flushed.
        state = load_journal(path)
        assert len(state.completed) == kill_after
        assert len(excinfo.value.result.rows) == kill_after

        resumed = run_sweep_resilient(spec, journal_path=path, resume=True)
        assert resumed.complete
        assert resumed.rows == list(_serial_rows(base_seed))
        assert resumed.manifest.cells_replayed == kill_after
