"""Chaos-driven validation of the fault-tolerant sweep runner.

The acceptance bar (ISSUE 2): with injected crash + hang + transient
error + corrupt faults on >= 20% of cells, the resilient runner must
finish the sweep, quarantine *only* the truly-poisoned (persistent)
cells, report them in the ``FailureManifest``, and a resume after a
simulated hard kill must yield rows bit-identical to a clean serial
:func:`run_sweep`.
"""

import json
import os
import time
from functools import lru_cache, partial

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.testing.chaos import ChaosPlan
from repro.workloads.journal import load_journal
from repro.workloads.random_instances import random_instance
from repro.workloads.execute import ExecutionPolicy, execute_sweep
from repro.workloads.resilient import (
    SweepExecutionError,
    SweepInterrupted,
    validate_cell_rows,
)
from repro.workloads.sweep import SweepSpec


def run_sweep(spec):
    """Serial reference rows via the unified entrypoint."""
    return execute_sweep(spec).rows


def run_sweep_resilient(spec, **kwargs):
    """The fault-tolerant scheduler under its current execute_sweep surface.

    Keeps the historical keyword names these tests were written with
    (max_workers/max_retries/journal_path) while exercising the
    non-deprecated ExecutionPolicy path.
    """
    policy = ExecutionPolicy(
        parallel=True,
        workers=kwargs.pop("max_workers", None),
        retries=kwargs.pop("max_retries", 2),
        journal=kwargs.pop("journal_path", None),
        **kwargs,
    )
    return execute_sweep(spec, policy)


def _chaos_spec() -> SweepSpec:
    return SweepSpec(
        epsilons=[0.2, 0.5],
        machine_counts=[1, 2],
        algorithms=["threshold", "greedy"],
        workload=partial(random_instance, 8),
        repetitions=3,
        base_seed=13,
    )


#: Deterministic plan: on the grid above it faults 5/12 cells (>= 20%)
#: covering all four kinds; persistent = {corrupt, corrupt, error},
#: transient = {crash, hang} (the hang is transient, so the slow timeout
#: path runs exactly once).
CHAOS_PLAN = ChaosPlan(
    crash_rate=0.12,
    hang_rate=0.1,
    error_rate=0.12,
    corrupt_rate=0.12,
    persistent_rate=0.45,
    hang_seconds=30.0,
    seed=32,
)


def _small_spec(base_seed: int = 5) -> SweepSpec:
    return SweepSpec(
        epsilons=[0.25, 0.5],
        machine_counts=[1],
        algorithms=["greedy"],
        workload=partial(random_instance, 6),
        repetitions=2,
        base_seed=base_seed,
    )


@lru_cache(maxsize=None)
def _serial_rows(base_seed: int) -> tuple:
    return tuple(run_sweep(_small_spec(base_seed)))


def _hanging_workload(m: int, eps: float, seed: int):
    """Module-level (picklable) workload that hangs on two machines."""
    if m == 2:
        time.sleep(30.0)
    return random_instance(5, m, eps, seed=seed)


def _broken_workload(m: int, eps: float, seed: int):
    """Module-level workload that always raises (a poison cell)."""
    raise ValueError("this workload is permanently broken")


class TestCleanRuns:
    def test_matches_serial_without_faults(self):
        spec = _chaos_spec()
        result = run_sweep_resilient(spec, max_workers=4)
        assert result.complete
        assert result.rows == run_sweep(spec)
        assert result.manifest.cells_completed == result.manifest.cells_total

    def test_journal_written_and_replayed(self, tmp_path):
        spec = _small_spec()
        path = tmp_path / "sweep.jsonl"
        first = run_sweep_resilient(spec, journal_path=path, max_workers=2)
        assert first.complete and first.journal_path == str(path)
        # A full resume re-executes nothing: every cell replays from disk.
        again = run_sweep_resilient(spec, journal_path=path, resume=True)
        assert again.rows == first.rows == list(_serial_rows(5))
        assert again.manifest.cells_replayed == again.manifest.cells_total
        assert again.manifest.cells_completed == 0

    def test_resume_without_journal_path_rejected(self):
        with pytest.raises(ValueError, match="journal"):
            run_sweep_resilient(_small_spec(), resume=True)


class TestChaosAcceptance:
    """The headline chaos scenario from the issue's acceptance criteria."""

    def test_quarantines_only_poisoned_cells(self):
        spec = _chaos_spec()
        cells = list(spec.cells())
        seeds = [spec.cell_seed(*c) for c in cells]
        faults = CHAOS_PLAN.faulted_cells(seeds)

        # Premise: >= 20% of cells faulted, all injectable kinds present.
        assert len(faults) / len(cells) >= 0.20
        kinds = {kind for kind, _ in faults.values()}
        assert {"crash", "hang", "error", "corrupt"} <= kinds
        poisoned = {seed for seed, (_, persistent) in faults.items() if persistent}
        transient = set(faults) - poisoned
        assert poisoned and transient

        result = run_sweep_resilient(
            spec,
            chaos=CHAOS_PLAN,
            timeout=1.0,
            max_retries=1,
            backoff=0.02,
            max_workers=4,
        )
        manifest = result.manifest
        if os.environ.get("REPRO_CHAOS_MANIFEST"):
            with open(os.environ["REPRO_CHAOS_MANIFEST"], "w") as fh:
                json.dump(manifest.as_dict(), fh, indent=2)

        # Quarantine exactly the persistent cells, nothing else.
        assert {f.seed for f in manifest.failures} == poisoned
        assert manifest.recovered == len(transient)
        assert manifest.cells_completed == len(cells) - len(poisoned)

        # Failures are fully attributed: kind, attempts, per-attempt history.
        by_seed = {f.seed: f for f in manifest.failures}
        for seed, (kind, _) in faults.items():
            if seed in poisoned:
                failure = by_seed[seed]
                expected = "timeout" if kind == "hang" else kind
                assert failure.kind == expected
                assert failure.attempts == 2
                assert len(failure.history) == 2

        # Graceful degradation: every surviving row is bit-identical to
        # the serial run's row for that cell.
        serial = run_sweep(spec)
        surviving = [
            row
            for cell, chunk in zip(
                cells, [serial[i : i + 2] for i in range(0, len(serial), 2)]
            )
            if spec.cell_seed(*cell) not in poisoned
            for row in chunk
        ]
        assert result.rows == surviving

    def test_resume_after_hard_kill_bit_identical_to_serial(self, tmp_path):
        spec = _chaos_spec()
        path = tmp_path / "killed.jsonl"
        with pytest.raises(SweepInterrupted) as excinfo:
            run_sweep_resilient(
                spec, journal_path=path, interrupt_after=4, max_workers=2
            )
        partial_result = excinfo.value.result
        assert 0 < len(partial_result.rows) < len(run_sweep(spec))

        resumed = run_sweep_resilient(spec, journal_path=path, resume=True, max_workers=2)
        assert resumed.complete
        assert resumed.rows == run_sweep(spec)
        assert resumed.manifest.cells_replayed >= 4

    def test_resume_tolerates_truncated_tail(self, tmp_path):
        spec = _small_spec()
        path = tmp_path / "sweep.jsonl"
        with pytest.raises(SweepInterrupted):
            run_sweep_resilient(spec, journal_path=path, interrupt_after=2, max_workers=1)
        with open(path, "a") as fh:
            fh.write('{"kind": "cell", "seed": 1, "rows": [[0.25, 1')  # hard kill mid-write
        resumed = run_sweep_resilient(spec, journal_path=path, resume=True)
        assert resumed.rows == list(_serial_rows(5))

    def test_double_hard_kill_and_resume(self, tmp_path):
        # kill -> resume -> kill -> resume: each kill leaves a partial
        # trailing line, and each resume must still converge on a journal
        # that loads cleanly and rows bit-identical to the serial run.
        spec = _chaos_spec()  # 12 cells
        path = tmp_path / "killed-twice.jsonl"
        with pytest.raises(SweepInterrupted):
            run_sweep_resilient(spec, journal_path=path, interrupt_after=3, max_workers=1)
        with open(path, "a") as fh:
            fh.write('{"kind": "cell", "seed": 7, "rows": [[0.2')
        with pytest.raises(SweepInterrupted):
            run_sweep_resilient(
                spec, journal_path=path, resume=True, interrupt_after=3, max_workers=1
            )
        with open(path, "a") as fh:
            fh.write('{"kind": "ce')
        resumed = run_sweep_resilient(spec, journal_path=path, resume=True, max_workers=2)
        assert resumed.complete
        assert resumed.rows == run_sweep(spec)
        assert resumed.manifest.cells_replayed >= 6
        state = load_journal(path)
        assert not state.truncated_tail
        assert len(state.completed) == 12

    def test_journal_with_quarantined_cells_stays_loadable(self, tmp_path):
        # Quarantine writes a failure record; the journal must still load
        # (and resume) afterwards, reporting the failure for observability.
        spec = SweepSpec(
            epsilons=[0.3],
            machine_counts=[1],
            algorithms=["greedy"],
            workload=_broken_workload,
            repetitions=1,
        )
        path = tmp_path / "poison.jsonl"
        result = run_sweep_resilient(
            spec, journal_path=path, max_retries=0, max_workers=1
        )
        assert result.manifest.quarantined == 1
        state = load_journal(path)
        assert len(state.failures) == 1
        assert state.failures[0]["kind"] == "error"
        resumed = run_sweep_resilient(
            spec, journal_path=path, resume=True, max_retries=0, max_workers=1
        )
        assert resumed.manifest.quarantined == 1


class TestFailureModes:
    def test_hung_cells_time_out_and_quarantine(self):
        spec = SweepSpec(
            epsilons=[0.3],
            machine_counts=[1, 2],
            algorithms=["greedy"],
            workload=_hanging_workload,
            repetitions=1,
            base_seed=2,
        )
        start = time.monotonic()
        result = run_sweep_resilient(spec, timeout=0.5, max_retries=0, max_workers=2)
        assert time.monotonic() - start < 15.0  # terminated, not waited on
        assert [f.kind for f in result.manifest.failures] == ["timeout"]
        assert result.manifest.failures[0].machines == 2
        # The healthy machine count still produced its row.
        assert [r.machines for r in result.rows] == [1]

    def test_poison_cell_exhausts_retries(self):
        spec = SweepSpec(
            epsilons=[0.3],
            machine_counts=[1],
            algorithms=["greedy"],
            workload=_broken_workload,
            repetitions=1,
        )
        result = run_sweep_resilient(spec, max_retries=2, backoff=0.01)
        assert result.rows == []
        (failure,) = result.manifest.failures
        assert failure.kind == "error"
        assert failure.attempts == 3
        assert "permanently broken" in failure.detail
        assert result.manifest.retries == 2

    def test_corrupt_rows_detected_by_validator(self):
        spec = _small_spec()
        eps, m, rep = next(iter(spec.cells()))
        rows = run_sweep(spec)[:1]
        assert validate_cell_rows(spec, eps, m, rep, rows) is None
        mangled = ChaosPlan().corrupt_rows(rows)
        problem = validate_cell_rows(spec, eps, m, rep, mangled)
        assert problem is not None and "accepted_load" in problem
        assert validate_cell_rows(spec, eps, m, rep, "rows") is not None
        assert validate_cell_rows(spec, eps, m, rep, []) is not None

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_parallel_wrapper_raises_on_failure(self):
        # Exercises the deprecated strict wrapper on purpose.
        spec = SweepSpec(
            epsilons=[0.3],
            machine_counts=[1],
            algorithms=["greedy"],
            workload=_broken_workload,
            repetitions=1,
        )
        from repro.workloads.parallel import run_sweep_parallel

        with pytest.raises(SweepExecutionError, match="permanently broken") as excinfo:
            run_sweep_parallel(spec)
        assert excinfo.value.manifest.quarantined == 1


class TestInterruptedResumeProperty:
    """Hypothesis: interrupt anywhere, resume, get the serial rows exactly."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(base_seed=st.sampled_from([5, 6, 7]), kill_after=st.integers(1, 3))
    def test_interrupt_resume_bit_identical(self, tmp_path, base_seed, kill_after):
        spec = _small_spec(base_seed)
        path = tmp_path / f"journal-{base_seed}-{kill_after}-{time.monotonic_ns()}.jsonl"
        with pytest.raises(SweepInterrupted) as excinfo:
            run_sweep_resilient(
                spec, journal_path=path, interrupt_after=kill_after, max_workers=1
            )
        # The journal holds exactly what the interrupt flushed.
        state = load_journal(path)
        assert len(state.completed) == kill_after
        assert len(excinfo.value.result.rows) == kill_after

        resumed = run_sweep_resilient(spec, journal_path=path, resume=True)
        assert resumed.complete
        assert resumed.rows == list(_serial_rows(base_seed))
        assert resumed.manifest.cells_replayed == kill_after
