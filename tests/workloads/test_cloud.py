"""Tests for the IaaS cloud workload generator."""

import pytest

from repro.workloads.cloud import (
    DEFAULT_SERVICE_MIX,
    ServiceClass,
    cloud_instance,
    per_service_loads,
)


class TestServiceClass:
    def test_default_mix_sound(self):
        assert len(DEFAULT_SERVICE_MIX) == 3
        names = {c.name for c in DEFAULT_SERVICE_MIX}
        assert names == {"interactive", "analytics", "batch"}

    def test_tightest_class_at_system_slack(self):
        assert min(c.slack_multiplier for c in DEFAULT_SERVICE_MIX) == 1.0

    def test_rejects_sub_unit_multiplier(self):
        with pytest.raises(ValueError, match="slack_multiplier"):
            ServiceClass("bad", 1.0, 1.0, 0.5, 0.5)


class TestCloudInstance:
    def test_basic_generation(self):
        inst = cloud_instance(100, 4, 0.1, seed=0)
        assert len(inst) == 100
        assert inst.machines == 4

    def test_slack_respected_per_class(self):
        inst = cloud_instance(150, 4, 0.1, seed=1)
        for job in inst:
            assert job.satisfies_slack(0.1)

    def test_jobs_tagged_with_service(self):
        inst = cloud_instance(80, 2, 0.2, seed=2)
        services = {job.tag("service") for job in inst}
        assert services <= {"interactive", "analytics", "batch"}
        assert "interactive" in services  # weight 0.6 -> essentially certain

    def test_interactive_jobs_tight(self):
        inst = cloud_instance(120, 2, 0.2, seed=3)
        for job in inst:
            if job.tag("service") == "interactive":
                assert job.has_tight_slack(0.2)

    def test_deterministic(self):
        a = cloud_instance(30, 2, 0.1, seed=5)
        b = cloud_instance(30, 2, 0.1, seed=5)
        assert a.to_json() == b.to_json()

    def test_amplitude_validation(self):
        with pytest.raises(ValueError):
            cloud_instance(10, 1, 0.1, diurnal_amplitude=1.5)

    def test_zero_amplitude_allowed(self):
        inst = cloud_instance(20, 1, 0.1, seed=0, diurnal_amplitude=0.0)
        assert len(inst) == 20

    def test_per_service_loads_partition_total(self):
        inst = cloud_instance(60, 2, 0.1, seed=4)
        loads = per_service_loads(inst)
        assert sum(loads.values()) == pytest.approx(inst.total_load)

    def test_meta_records_mix(self):
        inst = cloud_instance(10, 1, 0.1, seed=0)
        assert set(inst.meta["mix"]) == {"interactive", "analytics", "batch"}
