"""Tests for trace CSV round-tripping."""

import pytest

from repro.workloads.cloud import cloud_instance
from repro.workloads.traces import (
    instance_from_csv,
    instance_to_csv,
    load_trace,
    save_trace,
)
from repro.workloads.random_instances import random_instance


class TestRoundTrip:
    def test_plain_instance(self):
        inst = random_instance(25, 3, 0.2, seed=9)
        back = instance_from_csv(instance_to_csv(inst))
        assert back.machines == inst.machines
        assert back.epsilon == inst.epsilon
        assert back.name == inst.name
        assert len(back) == len(inst)
        for a, b in zip(inst, back):
            assert a.release == b.release
            assert a.processing == b.processing
            assert a.deadline == b.deadline

    def test_tags_preserved_with_types(self):
        inst = cloud_instance(15, 2, 0.1, seed=1)
        back = instance_from_csv(instance_to_csv(inst))
        for a, b in zip(inst, back):
            assert a.tag("service") == b.tag("service")

    def test_numeric_tags_cast(self):
        from repro.model.instance import Instance
        from repro.model.job import Job

        inst = Instance(
            [Job(0, 1, 5).with_tags(burst=3, weight=0.5, label="x")],
            machines=1,
            epsilon=1.0,
        )
        back = instance_from_csv(instance_to_csv(inst))
        job = back[0]
        assert job.tag("burst") == 3 and isinstance(job.tag("burst"), int)
        assert job.tag("weight") == 0.5 and isinstance(job.tag("weight"), float)
        assert job.tag("label") == "x"

    def test_file_round_trip(self, tmp_path):
        inst = random_instance(10, 2, 0.3, seed=2)
        path = save_trace(inst, tmp_path / "trace.csv")
        back = load_trace(path)
        assert back.to_json() == inst.to_json() or len(back) == len(inst)


class TestValidation:
    def test_missing_header(self):
        with pytest.raises(ValueError, match="header"):
            instance_from_csv("release,processing,deadline,tags\n")

    def test_bad_columns(self):
        text = "# machines=1 epsilon=0.5 name=x\nwrong,header\n"
        with pytest.raises(ValueError, match="column header"):
            instance_from_csv(text)

    def test_exact_float_precision(self):
        inst = random_instance(5, 1, 0.123456789, seed=3)
        back = instance_from_csv(instance_to_csv(inst))
        # repr round-trip: bit-exact floats.
        assert list(back.releases()) == list(inst.releases())
