"""Unit tests for half-open interval arithmetic."""

import pytest

from repro.utils.intervals import (
    Interval,
    covering_gaps,
    intersect,
    merge_intervals,
    overlap_length,
    subtract_intervals,
    total_length,
)


class TestInterval:
    def test_length(self):
        assert Interval(1.0, 3.5).length == 2.5

    def test_length_never_negative(self):
        assert Interval(3.0, 1.0).length == 0.0

    def test_midpoint(self):
        assert Interval(2.0, 4.0).midpoint == 3.0

    def test_contains_half_open(self):
        iv = Interval(1.0, 2.0)
        assert iv.contains(1.0)
        assert iv.contains(1.5)
        assert not iv.contains(2.5)

    def test_is_empty(self):
        assert Interval(1.0, 1.0).is_empty()
        assert not Interval(1.0, 1.1).is_empty()


class TestIntersect:
    def test_overlapping(self):
        assert intersect(Interval(0, 2), Interval(1, 3)) == Interval(1, 2)

    def test_disjoint_gives_empty(self):
        out = intersect(Interval(0, 1), Interval(2, 3))
        assert out.length == 0.0

    def test_nested(self):
        assert intersect(Interval(0, 10), Interval(3, 4)) == Interval(3, 4)

    def test_overlap_length(self):
        assert overlap_length(Interval(0, 5), Interval(3, 9)) == 2.0


class TestMerge:
    def test_merges_overlapping(self):
        out = merge_intervals([Interval(0, 2), Interval(1, 3), Interval(5, 6)])
        assert out == [Interval(0, 3), Interval(5, 6)]

    def test_sorts_input(self):
        out = merge_intervals([Interval(5, 6), Interval(0, 1)])
        assert out == [Interval(0, 1), Interval(5, 6)]

    def test_drops_empty(self):
        assert merge_intervals([Interval(1, 1), Interval(2, 2)]) == []

    def test_total_length_of_union(self):
        ivs = [Interval(0, 2), Interval(1, 3), Interval(10, 11)]
        assert total_length(ivs) == pytest.approx(4.0)


class TestSubtract:
    def test_punch_hole(self):
        out = subtract_intervals(Interval(0, 10), [Interval(3, 4)])
        assert out == [Interval(0, 3), Interval(4, 10)]

    def test_hole_at_edges(self):
        out = subtract_intervals(Interval(0, 10), [Interval(0, 2), Interval(9, 10)])
        assert out == [Interval(2, 9)]

    def test_full_cover_gives_nothing(self):
        assert subtract_intervals(Interval(0, 5), [Interval(0, 5)]) == []

    def test_holes_outside_base_ignored(self):
        out = subtract_intervals(Interval(0, 5), [Interval(7, 9)])
        assert out == [Interval(0, 5)]

    def test_covering_gaps_alias(self):
        assert covering_gaps(Interval(0, 4), [Interval(1, 2)]) == subtract_intervals(
            Interval(0, 4), [Interval(1, 2)]
        )
