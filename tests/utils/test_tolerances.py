"""Unit tests for the float-comparison policy."""

import math

from repro.utils.tolerances import (
    TIME_EPS,
    feq,
    fge,
    fgt,
    fle,
    flt,
    is_close,
    snap,
)


class TestPredicates:
    def test_feq_within_eps(self):
        assert feq(1.0, 1.0 + TIME_EPS / 2)

    def test_feq_outside_eps(self):
        assert not feq(1.0, 1.0 + 10 * TIME_EPS)

    def test_fle_at_equality(self):
        assert fle(2.0, 2.0)

    def test_fle_with_noise(self):
        assert fle(2.0 + TIME_EPS / 2, 2.0)

    def test_fle_strictly_greater_fails(self):
        assert not fle(2.1, 2.0)

    def test_flt_requires_margin(self):
        assert flt(1.0, 2.0)
        assert not flt(2.0 - TIME_EPS / 2, 2.0)

    def test_fge_symmetry_with_fle(self):
        assert fge(3.0, 2.0)
        assert fge(2.0, 2.0 + TIME_EPS / 2)
        assert not fge(1.0, 2.0)

    def test_fgt_requires_margin(self):
        assert fgt(2.0, 1.0)
        assert not fgt(2.0 + TIME_EPS / 2, 2.0)

    def test_custom_eps_respected(self):
        assert feq(1.0, 1.4, eps=0.5)
        assert not feq(1.0, 1.4, eps=0.1)


class TestSnap:
    def test_snap_tiny_negative_to_zero(self):
        assert snap(-1e-15) == 0.0

    def test_snap_tiny_positive_to_zero(self):
        assert snap(1e-12) == 0.0

    def test_snap_keeps_real_values(self):
        assert snap(0.5) == 0.5
        assert snap(-0.5) == -0.5


class TestIsClose:
    def test_relative_mode(self):
        assert is_close(1e9, 1e9 * (1 + 1e-10))

    def test_absolute_mode(self):
        assert is_close(0.0, TIME_EPS / 2)

    def test_far_apart(self):
        assert not is_close(1.0, 2.0)

    def test_matches_math_isclose(self):
        assert is_close(3.14, 3.14) == math.isclose(3.14, 3.14)
