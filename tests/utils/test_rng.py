"""Unit tests for RNG helpers: determinism, independence, normalisation."""

import numpy as np
import pytest

from repro.utils.rng import (
    DEFAULT_SEED,
    interleave_seeds,
    make_rng,
    rng_from_any,
    sample_indices,
    shuffled,
    spawn_rngs,
)


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a, b = make_rng(7), make_rng(7)
        assert np.array_equal(a.random(5), b.random(5))

    def test_none_uses_default_seed(self):
        assert np.array_equal(make_rng(None).random(3), make_rng(DEFAULT_SEED).random(3))

    def test_different_seeds_differ(self):
        assert not np.array_equal(make_rng(1).random(5), make_rng(2).random(5))


class TestRngFromAny:
    def test_passes_generator_through(self):
        g = make_rng(3)
        assert rng_from_any(g) is g

    def test_wraps_int(self):
        assert isinstance(rng_from_any(42), np.random.Generator)


class TestSpawn:
    def test_spawn_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_spawn_deterministic(self):
        a = [g.random() for g in spawn_rngs(9, 4)]
        b = [g.random() for g in spawn_rngs(9, 4)]
        assert a == b

    def test_spawn_children_independent(self):
        g1, g2 = spawn_rngs(11, 2)
        assert not np.array_equal(g1.random(8), g2.random(8))

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestHelpers:
    def test_sample_indices_range(self):
        idx = sample_indices(make_rng(0), 10, 5)
        assert len(idx) == 5
        assert all(0 <= i < 10 for i in idx)
        assert len(set(int(i) for i in idx)) == 5  # no replacement

    def test_shuffled_is_permutation(self):
        items = list(range(20))
        out = shuffled(make_rng(1), items)
        assert sorted(out) == items

    def test_interleave_deterministic_and_sensitive(self):
        assert interleave_seeds([1, 2, 3]) == interleave_seeds([1, 2, 3])
        assert interleave_seeds([1, 2, 3]) != interleave_seeds([3, 2, 1])
        assert interleave_seeds([1]) != interleave_seeds([2])
